// Package temp is the public API of the TEMP reproduction: a
// memory-efficient, physical-aware tensor partition-mapping framework
// for LLM training on wafer-scale chips (HPCA 2026).
//
// The package re-exports the stable surface of the internal
// implementation:
//
//   - hardware models (wafer, die, D2D link, GPU cluster reference),
//   - the LLM model zoo and transformer block graphs,
//   - hybrid parallel configurations (DP/TP/SP/CP/TATP) and wafer
//     placements,
//   - the wafer-centric cost model that evaluates one training step,
//   - the baseline systems (Megatron-1, MeSP, FSDP × SMap/GMap),
//   - the dual-level wafer solver (chain DP + genetic refinement),
//   - fault injection and the experiment runners that regenerate
//     every table and figure of the paper's evaluation,
//   - the declarative scenario layer: JSON specs for wafers, models,
//     systems and scenarios, name-keyed registries, and batch
//     scenario evaluation over the concurrent engine.
//
// Quickstart:
//
//	w := temp.EvaluationWafer()
//	m := temp.GPT3_6_7B()
//	res, err := temp.BestTEMP(m, w)
//	fmt.Println(res.Config, res.StepTime, res.ThroughputTokens)
package temp

import (
	"temp/internal/baselines"
	"temp/internal/cost"
	"temp/internal/distrib"
	"temp/internal/experiments"
	"temp/internal/fault"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/sim"
	"temp/internal/solver"
	"temp/internal/spec"
)

// Hardware configurations (Table I, §VIII-A).
type (
	// Wafer is a wafer-scale chip configuration.
	Wafer = hw.Wafer
	// Die is one compute die.
	Die = hw.Die
	// Cluster is the switched GPU reference system.
	Cluster = hw.Cluster
)

// Wafer constructors.
var (
	// EvaluationWafer is the 4×8-die wafer of §VIII-A.
	EvaluationWafer = hw.EvaluationWafer
	// ReferenceWafer is the 6×8-die floorplan of Fig. 3.
	ReferenceWafer = hw.ReferenceWafer
	// WaferWithGrid resizes the evaluation wafer.
	WaferWithGrid = hw.WaferWithGrid
	// CustomWafer builds a wafer from arbitrary die/link components.
	CustomWafer = hw.Custom
	// A100Cluster is the 32-GPU comparison system of Fig. 15.
	A100Cluster = hw.A100Cluster
)

// Model is an LLM workload description (Table II).
type Model = model.Config

// Model zoo.
var (
	GPT3_6_7B   = model.GPT3_6_7B
	Llama2_7B   = model.Llama2_7B
	Llama3_70B  = model.Llama3_70B
	GPT3_76B    = model.GPT3_76B
	GPT3_175B   = model.GPT3_175B
	OPT_175B    = model.OPT_175B
	Grok1_341B  = model.Grok1_341B
	Llama3_405B = model.Llama3_405B
	GPT3_504B   = model.GPT3_504B
	// EvaluationModels lists the six Table II models.
	EvaluationModels = model.EvaluationModels
	// BlockGraph builds the Fig. 12 transformer block.
	BlockGraph = model.BlockGraph
)

// ParallelConfig is a hybrid parallel configuration
// (DP/TP/SP/CP/TATP degrees plus PP across wafers).
type ParallelConfig = parallel.Config

// Options configures a cost-model evaluation; Breakdown is its
// result.
type (
	Options   = cost.Options
	Breakdown = cost.Breakdown
	Engine    = cost.Engine
)

// Multi-fidelity cost backends: every tier prices whole steps (Price)
// and single operators (the solver fast path) behind one interface.
type (
	// CostBackend is one fidelity tier (analytic | replay | surrogate).
	CostBackend = cost.Backend
	// OperatorCostModel is a backend's per-operator fast path; it
	// satisfies the solver's CostModel.
	OperatorCostModel = cost.OperatorModel
	// CostSpec serializes a backend choice (name + surrogate seed).
	CostSpec = spec.CostSpec
)

// Cost-backend registry entry points.
var (
	// NewCostBackend resolves a backend key ("analytic", "replay",
	// "surrogate@seed=7") to a cached instance.
	NewCostBackend = cost.NewBackend
	// RegisterCostBackend adds a fidelity tier to the registry.
	RegisterCostBackend = cost.RegisterBackend
	// CostBackendNames lists registered tiers.
	CostBackendNames = cost.BackendNames
	// CostBackendKey builds the canonical key threaded through engine
	// jobs and scenario specs.
	CostBackendKey = cost.BackendKey
)

// Engines and conventions.
const (
	SMap       = cost.SMap
	GMap       = cost.GMap
	TCMEEngine = cost.TCMEEngine
)

// Evaluation entry points.
var (
	// Evaluate prices one training step of a model on a wafer under
	// a configuration.
	Evaluate = cost.Evaluate
	// EvaluateCluster prices the GPU reference system.
	EvaluateCluster = cost.EvaluateCluster
	// TEMPOptions are the conventions TEMP itself runs with.
	TEMPOptions = cost.TEMPOptions
)

// System is an evaluated training system; Result pairs its best
// configuration with the breakdown.
type (
	System = baselines.System
	Result = baselines.Result
)

// Baseline systems and sweeps.
var (
	Megatron1 = baselines.Megatron1
	MeSP      = baselines.MeSP
	FSDP      = baselines.FSDP
	// TEMPSystem is the full framework (TCME engine + TATP space).
	TEMPSystem = baselines.TEMP
	// Best sweeps a system's configuration space for its fastest
	// feasible configuration.
	Best = baselines.Best
	// CompareAll runs the Fig. 13 comparison (A–F + TEMP).
	CompareAll = sim.CompareAll
	// Ablation runs the Fig. 16 ladder.
	Ablation = sim.Ablation
	// MultiWafer evaluates pipeline scaling across wafers.
	MultiWafer = sim.MultiWafer
)

// BestTEMP sweeps TEMP's configuration space on a wafer.
func BestTEMP(m Model, w Wafer) (Result, error) {
	return baselines.Best(baselines.TEMP(), m, w)
}

// Solver surface (DLWS, §VII): the pluggable search-strategy
// framework over the shared problem/evaluator core.
type (
	// CostModel prices operators for the solver.
	CostModel = solver.CostModel
	// AnalyticCostModel is the closed-form wafer cost model.
	AnalyticCostModel = solver.Analytic
	// DLSOptions tunes the dual-level search.
	DLSOptions = solver.DLSOptions
	// SearchStats reports solver effort and quality.
	SearchStats = solver.Stats
	// SearchStrategy is one pluggable search algorithm; SearchProblem
	// and SearchBudget are its Solve inputs. SearchProblem.Screen
	// holds an optional cheap screening model for the multifid
	// strategy (surrogate-screened, exact-verified search).
	SearchStrategy = solver.Strategy
	SearchProblem  = solver.Problem
	SearchBudget   = solver.Budget
	// SearchCheckpoint is a periodic best-so-far snapshot.
	SearchCheckpoint = solver.Checkpoint
	// StrategyParams are named strategy tuning knobs.
	StrategyParams = solver.Params
	// SolverSpec serializes a strategy choice (name + params +
	// budget) like every other spec.
	SolverSpec = spec.SolverSpec
)

// Solver entry points.
var (
	// DLS runs the dual-level search (chain DP + GA).
	DLS = solver.DLS
	// ExhaustiveSearch is the ILP-stand-in joint search.
	ExhaustiveSearch = solver.Exhaustive
	// NewSearchStrategy resolves a registered strategy by name
	// (ga | anneal | hillclimb | dp | portfolio | multifid).
	NewSearchStrategy = solver.NewStrategy
	// SolverBackendModel resolves a cost backend's operator model by
	// key — the bridge between the backend registry and the solver.
	SolverBackendModel = solver.BackendModel
	// RegisterSearchStrategy adds a strategy to the registry.
	RegisterSearchStrategy = solver.RegisterStrategy
	// SearchStrategyNames lists registered strategies.
	SearchStrategyNames = solver.StrategyNames
)

// Fault tolerance surface (§VIII-F): injection/outcome plus the
// resilience layer — degradation-aware repair, deterministic fault
// campaigns, worst-case mask search, and the robust solver objective.
type (
	FaultInjection = fault.Injection
	FaultOutcome   = fault.Outcome
	// FaultRecovery reports a repair run: re-price-only vs repaired
	// (vs optional cold re-solve) normalized throughput.
	FaultRecovery = fault.Recovery
	// FaultRepairOptions tunes the repair search.
	FaultRepairOptions = fault.RepairOptions
	// FaultCampaign is a deterministic Monte Carlo survivability grid.
	FaultCampaign = fault.Campaign
	// FaultCampaignResult is a campaign's JSON-serializable outcome.
	FaultCampaignResult = fault.CampaignResult
	// FaultMaskSearch finds the most damaging K-link/K-die mask.
	FaultMaskSearch = fault.MaskSearch
	// FaultWorstCase is a mask search's outcome.
	FaultWorstCase = fault.WorstCase
	// RobustCostModel averages a cost model over a fault-mask
	// ensemble — the robust solver objective.
	RobustCostModel = fault.RobustModel
	// RepairSpec/CampaignSpec/RobustSpec serialize the resilience
	// stages like every other spec.
	RepairSpec   = spec.RepairSpec
	CampaignSpec = spec.CampaignSpec
	RobustSpec   = spec.RobustSpec
)

// Fault entry points.
var (
	EvaluateWithFaults        = fault.Evaluate
	FaultNormalizedThroughput = fault.NormalizedThroughput
	// RepairFaults warm-starts a repair search on a degraded topology.
	RepairFaults = fault.Repair
	// RepairInjectedFaults draws a seeded mask, then repairs it.
	RepairInjectedFaults = fault.RepairInjected
	// NewRobustCostModel builds the robust solver objective.
	NewRobustCostModel = fault.NewRobustModel
	// FaultRandomMaskNorm is the random-sampling baseline a worst-case
	// mask search is compared against.
	FaultRandomMaskNorm = fault.RandomMaskNorm
)

// Declarative scenario layer (internal/spec): serializable JSON specs
// for wafers, models, systems and whole evaluation scenarios, plus the
// name-keyed registries the CLIs resolve against.
type (
	WaferSpec    = spec.WaferSpec
	DieSpec      = spec.DieSpec
	LinkSpec     = spec.LinkSpec
	ModelSpec    = spec.ModelSpec
	SystemSpec   = spec.SystemSpec
	ConfigSpec   = spec.ConfigSpec
	ScenarioSpec = spec.ScenarioSpec
	// Scenario is a resolved, validated ScenarioSpec.
	Scenario = spec.Scenario
	// ScenarioResult pairs one scenario with its evaluation outcome.
	ScenarioResult = sim.ScenarioResult
	// SystemEnvelope caps a system's swept configuration space.
	SystemEnvelope = baselines.Envelope
)

// Scenario entry points and registries.
var (
	// LoadScenario / LoadScenarioDir read scenario JSON files.
	LoadScenario    = spec.LoadScenario
	LoadScenarioDir = spec.LoadScenarioDir
	// ParseScenario decodes one scenario spec from JSON bytes.
	ParseScenario = spec.ParseScenario
	// RunScenario evaluates one resolved scenario; RunScenarios fans a
	// batch out over the evaluation engine in input order.
	RunScenario  = sim.RunScenario
	RunScenarios = sim.RunScenarios
	// RunScenarioSpecs resolves and runs serialized specs.
	RunScenarioSpecs = sim.RunScenarioSpecs
	// RegisteredWafers/Models/Systems are the name-keyed registries,
	// pre-populated with every paper constructor.
	RegisteredWafers  = spec.Wafers
	RegisteredModels  = spec.Models
	RegisteredSystems = spec.Systems
	// LookupWafer/Model/System resolve registry names.
	LookupWafer  = spec.LookupWafer
	LookupModel  = spec.LookupModel
	LookupSystem = spec.LookupSystem
	// SystemFromScheme builds a system from scheme × engine ×
	// envelope.
	SystemFromScheme = baselines.FromScheme
	// WaferSpecOf/ModelSpecOf/SystemSpecOf are the ToSpec round-trips.
	WaferSpecOf  = spec.WaferSpecOf
	ModelSpecOf  = spec.ModelSpecOf
	SystemSpecOf = spec.SystemSpecOf
)

// ExperimentTable is a regenerated paper artefact.
type ExperimentTable = experiments.Table

// Experiment runners.
var (
	// RunExperiment regenerates one table/figure by id (see
	// DESIGN.md's per-experiment index).
	RunExperiment = experiments.ByID
	// RunAllExperiments regenerates the full evaluation.
	RunAllExperiments = experiments.All
)

// Distributed sweep fabric: a coordinator that shards engine-shaped
// workloads (scenario batches, experiment suites, fault campaigns,
// solver races) across worker processes with work stealing, bounded
// requeue on worker loss, and deterministic index-addressed merges. A
// nil *Fabric is valid and runs everything in-process.
type (
	// Fabric is the coordinator handle.
	Fabric = distrib.Fabric
	// FabricOptions configures worker spawning and sharding.
	FabricOptions = distrib.Options
	// FabricStats summarizes a fabric's lifetime (per-worker
	// throughput, steals, requeues, heartbeat liveness, cache
	// counters).
	FabricStats = distrib.Stats
	// ChaosConfig is the deterministic fault-injection campaign a
	// fabric's transports can run under (delay/drop/corrupt/truncate/
	// stall/kill at seeded rates); merged results stay bit-identical.
	ChaosConfig = distrib.ChaosConfig
	// RedialOptions configures a TCP worker's reconnect backoff.
	RedialOptions = distrib.RedialOptions
	// DistribSpec is the optional "distrib" block of a scenario spec.
	DistribSpec = spec.DistribSpec
)

// Fabric entry points.
var (
	// NewFabric spawns (or accepts, with Options.Listen) the workers.
	NewFabric = distrib.New
	// ServeFabricWorker turns the current process into a stdio worker.
	ServeFabricWorker = distrib.ServeStdio
	// ConnectFabricWorker dials a coordinator and serves over TCP.
	ConnectFabricWorker = distrib.ConnectAndServe
	// DialFabricWorker is ConnectFabricWorker with re-dial on
	// connection loss (exponential backoff, deterministic jitter).
	DialFabricWorker = distrib.DialAndServe
	// ParseChaos parses a "seed,rate" chaos campaign spec.
	ParseChaos = distrib.ParseChaos
	// RegisterFabricKind adds a task kind to the worker registry.
	RegisterFabricKind = distrib.RegisterKind
	// RunScenarioSpecsOn distributes a scenario batch over a fabric.
	RunScenarioSpecsOn = sim.RunScenarioSpecsOn
	// RunCampaignOn distributes a fault campaign's grid cells.
	RunCampaignOn = fault.Campaign.RunOn
	// RunExperimentOn regenerates one experiment through a fabric.
	RunExperimentOn = experiments.ByIDOn
	// DistributedRace races the portfolio's strategies across worker
	// processes instead of goroutines.
	DistributedRace = solver.DistributedRace
)
