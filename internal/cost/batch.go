package cost

import (
	"sync"

	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/model"
	"temp/internal/parallel"
)

// BatchBackend is the optional interface of tiers that price many
// candidate configurations of one (model, wafer, options) family per
// call. A batch shares everything the candidates have in common — the
// interned topology, the block graph, the per-configuration lowering
// states and the pricing scratch — so the per-candidate marginal cost
// collapses to the bottleneck scans of the compiled SoA link profiles.
// Results are bit-identical to per-candidate Price calls; out and errs
// must both have len(cfgs).
type BatchBackend interface {
	PriceBatch(m model.Config, w hw.Wafer, cfgs []parallel.Config, o Options, out []Breakdown, errs []error)
}

// PriceBatch prices every candidate configuration through the
// backend, using its batched kernel when it has one and falling back
// to per-candidate Price calls otherwise. Each out[i], errs[i] equals
// what be.Price(m, w, cfgs[i], o) returns, bit for bit.
func PriceBatch(be Backend, m model.Config, w hw.Wafer, cfgs []parallel.Config, o Options) ([]Breakdown, []error) {
	out := make([]Breakdown, len(cfgs))
	errs := make([]error, len(cfgs))
	if bb, ok := be.(BatchBackend); ok {
		bb.PriceBatch(m, w, cfgs, o, out, errs)
		return out, errs
	}
	for i, cfg := range cfgs {
		out[i], errs[i] = be.Price(m, w, cfg, o)
	}
	return out, errs
}

// batchScratch is the pooled per-batch pricing state: one reusable
// evaluator value, the lowered-sequence buffer it threads through the
// stream/collective terms, a normalized-config dedupe index and a
// per-topology evalState cache that skips the interface boxing of
// Topology.Derived on repeat candidates.
type batchScratch struct {
	ev     evaluator
	seq    []mesh.LoweredSeq
	seen   map[parallel.Config]int32
	topo   *mesh.Topology
	states map[stateKey]*evalState
}

var batchPool = sync.Pool{New: func() any {
	return &batchScratch{
		seen:   make(map[parallel.Config]int32),
		states: make(map[stateKey]*evalState),
	}
}}

// retarget points the scratch at a topology, dropping state cached for
// a previous one.
func (s *batchScratch) retarget(topo *mesh.Topology) {
	if s.topo != topo {
		s.topo = topo
		clear(s.states)
	}
	clear(s.seen)
}

// stateFor is the scratch-cached stateFor: repeat (cfg, family) asks
// within and across batches on one topology cost a plain map hit.
func (s *batchScratch) stateFor(cfg parallel.Config, linear, tcmeOrders bool) (*evalState, error) {
	k := stateKey{cfg: cfg, linear: linear, tcme: tcmeOrders}
	if st, ok := s.states[k]; ok {
		return st, st.err
	}
	st, err := stateFor(s.topo, cfg, linear, tcmeOrders)
	s.states[k] = st
	return st, err
}

// evaluateState prices one (cfg, state) pair on the reused evaluator,
// bit-identical to the scalar evaluateState.
func (s *batchScratch) evaluateState(m model.Config, w hw.Wafer, cfg parallel.Config, o Options,
	st *evalState, graph model.Graph, replay bool) (Breakdown, error) {
	s.ev = evaluator{
		m: m, w: w, cfg: cfg, o: o,
		topo: s.topo, st: st,
		graph:  graph,
		replay: replay,
		seqBuf: s.seq[:0],
	}
	b, err := s.ev.run()
	s.seq = s.ev.seqBuf[:0]
	return b, err
}

// priceOne replicates the scalar evaluate() engine dispatch (including
// the default engine's rectangular-vs-linear placement race) against
// the scratch's cached states.
func (s *batchScratch) priceOne(m model.Config, w hw.Wafer, cfg parallel.Config, o Options,
	graph model.Graph, replay bool) (Breakdown, error) {
	tcmeOrders := o.Engine == TCMEEngine
	switch o.Engine {
	case SMap:
		st, err := s.stateFor(cfg, true, tcmeOrders)
		if err != nil {
			return Breakdown{}, err
		}
		return s.evaluateState(m, w, cfg, o, st, graph, replay)
	case GMap:
		st, err := s.stateFor(cfg, false, tcmeOrders)
		if err != nil {
			return Breakdown{}, err
		}
		return s.evaluateState(m, w, cfg, o, st, graph, replay)
	default:
		rect, rectErr := s.stateFor(cfg, false, tcmeOrders)
		lin, linErr := s.stateFor(cfg, true, tcmeOrders)
		if rectErr != nil && linErr != nil {
			return Breakdown{}, rectErr
		}
		var best Breakdown
		have := false
		if rectErr == nil {
			b, err := s.evaluateState(m, w, cfg, o, rect, graph, replay)
			if err == nil {
				best, have = b, true
			}
		}
		if linErr == nil {
			b, err := s.evaluateState(m, w, cfg, o, lin, graph, replay)
			if err == nil && (!have || b.StepTime < best.StepTime) {
				best, have = b, true
			}
		}
		if !have {
			return Breakdown{}, noViablePlacement(cfg)
		}
		return best, nil
	}
}

// priceBatch is the shared batched walk: normalize, dedupe, price each
// distinct candidate once on the pooled scratch.
func priceBatch(m model.Config, w hw.Wafer, cfgs []parallel.Config, o Options,
	out []Breakdown, errs []error, replay bool) {
	s := batchPool.Get().(*batchScratch)
	s.retarget(mesh.FromWafer(w))
	graph := model.BlockGraph(m)
	for i := range cfgs {
		n := cfgs[i].Normalize()
		if j, ok := s.seen[n]; ok {
			out[i], errs[i] = out[j], errs[j]
			continue
		}
		s.seen[n] = int32(i)
		out[i], errs[i] = s.priceOne(m, w, n, o, graph, replay)
	}
	batchPool.Put(s)
}

// PriceBatch implements BatchBackend for the analytic tier.
func (analyticBackend) PriceBatch(m model.Config, w hw.Wafer, cfgs []parallel.Config, o Options,
	out []Breakdown, errs []error) {
	priceBatch(m, w, cfgs, o, out, errs, false)
}

// PriceBatch implements BatchBackend for the replay tier: the same
// shared-state walk at contention fidelity.
func (*replayBackend) PriceBatch(m model.Config, w hw.Wafer, cfgs []parallel.Config, o Options,
	out []Breakdown, errs []error) {
	priceBatch(m, w, cfgs, o, out, errs, true)
}
