package parallel

import (
	"testing"

	"temp/internal/hw"
	"temp/internal/mesh"
)

func topo4x8() *mesh.Topology { return mesh.FromWafer(hw.EvaluationWafer()) }

func TestConfigNormalizeAndDegree(t *testing.T) {
	c := Config{DP: 2, TATP: 8}.Normalize()
	if c.TP != 1 || c.SP != 1 || c.CP != 1 || c.PP != 1 {
		t.Errorf("Normalize left zero degrees: %+v", c)
	}
	if c.Degree() != 16 {
		t.Errorf("Degree = %d, want 16", c.Degree())
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{DP: 4, TATP: 8}).Validate(32); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{DP: 4, TATP: 4}).Validate(32); err == nil {
		t.Error("under-provisioned config accepted")
	}
}

func TestConfigString(t *testing.T) {
	c := Config{DP: 1, TP: 1, SP: 2, TATP: 16}
	if got := c.String(); got != "(DP=1,TP=1,SP=2,TATP=16)" {
		t.Errorf("String = %q", got)
	}
}

func TestShardAndReplicaFactors(t *testing.T) {
	tests := []struct {
		name                       string
		cfg                        Config
		wShard, wRep, aShard, aRep int
	}{
		{
			name: "megatron-tp-dp",
			cfg:  Config{DP: 4, TP: 8},
			// TP shards weights 8 ways; DP replicates them 4×.
			// Activations: DP shards batch; TP replicates.
			wShard: 8, wRep: 4, aShard: 4, aRep: 8,
		},
		{
			name:   "fsdp",
			cfg:    Config{DP: 32, FSDP: true},
			wShard: 32, wRep: 1, aShard: 32, aRep: 1,
		},
		{
			name:   "tatp-pure",
			cfg:    Config{TATP: 32},
			wShard: 32, wRep: 1, aShard: 32, aRep: 1,
		},
		{
			name: "mesp",
			cfg:  Config{DP: 2, TP: 8, SP: 2, MegatronSP: true},
			// Megatron-3 SP: activations sequence-split across TP too.
			wShard: 8, wRep: 4, aShard: 2 * 2 * 8, aRep: 1,
		},
		{
			name:   "hybrid-tatp",
			cfg:    Config{DP: 2, TP: 2, TATP: 8},
			wShard: 16, wRep: 2, aShard: 16, aRep: 2,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			c := tc.cfg.Normalize()
			if got := c.WeightShardWays(); got != tc.wShard {
				t.Errorf("WeightShardWays = %d, want %d", got, tc.wShard)
			}
			if got := c.WeightReplicas(); got != tc.wRep {
				t.Errorf("WeightReplicas = %d, want %d", got, tc.wRep)
			}
			if got := c.ActShardWays(); got != tc.aShard {
				t.Errorf("ActShardWays = %d, want %d", got, tc.aShard)
			}
			if got := c.ActReplicas(); got != tc.aRep {
				t.Errorf("ActReplicas = %d, want %d", got, tc.aRep)
			}
			// Conservation: shard ways × replicas == total dies.
			if c.WeightShardWays()*c.WeightReplicas() != c.Degree() {
				t.Errorf("weight shard×rep ≠ degree")
			}
			if c.ActShardWays()*c.ActReplicas() != c.Degree() {
				t.Errorf("act shard×rep ≠ degree")
			}
		})
	}
}

func TestPlaceCoversAllDiesOnce(t *testing.T) {
	topo := topo4x8()
	cfgs := []Config{
		{DP: 2, TP: 2, TATP: 8},
		{DP: 4, TATP: 8},
		{TATP: 32},
		{DP: 32},
		{DP: 2, TP: 4, SP: 2, TATP: 2},
		{DP: 1, TP: 1, SP: 2, TATP: 16},
	}
	for _, cfg := range cfgs {
		p, err := Place(cfg, topo)
		if err != nil {
			t.Fatalf("Place(%s): %v", cfg, err)
		}
		seen := map[mesh.DieID]int{}
		var walk func(level int, coord map[Strategy]int)
		strategies := Strategies()
		walk = func(level int, coord map[Strategy]int) {
			if level == len(strategies) {
				seen[p.DieAt(coord)]++
				return
			}
			s := strategies[level]
			for i := 0; i < cfg.Normalize().DegreeOf(s); i++ {
				coord[s] = i
				walk(level+1, coord)
			}
			coord[s] = 0
		}
		walk(0, map[Strategy]int{})
		if len(seen) != topo.Dies() {
			t.Errorf("%s: placement covers %d dies, want %d", cfg, len(seen), topo.Dies())
		}
		for d, n := range seen {
			if n != 1 {
				t.Errorf("%s: die %d assigned %d logical coords", cfg, d, n)
			}
		}
	}
}

func TestTATPGroupsAreContiguousRects(t *testing.T) {
	topo := topo4x8()
	cfgs := []Config{
		{DP: 2, TP: 2, TATP: 8},
		{DP: 4, TATP: 8},
		{TATP: 32},
		{DP: 2, TATP: 16},
		{DP: 8, TATP: 4},
	}
	for _, cfg := range cfgs {
		p, err := Place(cfg, topo)
		if err != nil {
			t.Fatalf("Place(%s): %v", cfg, err)
		}
		groups := p.Groups(TATP)
		wantGroups := cfg.Degree() / cfg.Normalize().TATP
		if len(groups) != wantGroups {
			t.Fatalf("%s: %d TATP groups, want %d", cfg, len(groups), wantGroups)
		}
		for _, g := range groups {
			if !g.Contiguous() {
				t.Errorf("%s: TATP group %v not contiguous", cfg, g.Dies)
				continue
			}
			if g.Size() != cfg.Normalize().TATP {
				t.Errorf("%s: group size %d, want %d", cfg, g.Size(), cfg.Normalize().TATP)
			}
			// Ring-capable whenever the degree admits a 2×k block on
			// this wafer (all the even degrees ≥4 here do).
			if cfg.Normalize().TATP >= 4 && !g.Rect.HasRing() {
				t.Errorf("%s: TATP rect %+v not ring-capable", cfg, *g.Rect)
			}
		}
	}
}

func TestGroupsPartitionWafer(t *testing.T) {
	topo := topo4x8()
	cfg := Config{DP: 2, TP: 2, SP: 2, TATP: 2, CP: 2}
	p, err := Place(cfg, topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range Strategies() {
		groups := p.Groups(s)
		seen := map[mesh.DieID]bool{}
		for _, g := range groups {
			if g.Strategy != s {
				t.Errorf("group strategy mismatch: %v in %v list", g.Strategy, s)
			}
			for _, d := range g.Dies {
				if seen[d] {
					t.Errorf("%v: die %d in two groups", s, d)
				}
				seen[d] = true
			}
		}
		if len(seen) != topo.Dies() {
			t.Errorf("%v groups cover %d dies, want %d", s, len(seen), topo.Dies())
		}
	}
}

func TestAllGroupsSkipsUnitDegrees(t *testing.T) {
	topo := topo4x8()
	p, err := Place(Config{DP: 4, TATP: 8}, topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range p.AllGroups() {
		if g.Strategy != DP && g.Strategy != TATP {
			t.Errorf("unexpected group for inactive strategy %v", g.Strategy)
		}
	}
}

func TestPlaceRejectsUnmappable(t *testing.T) {
	topo := topo4x8()
	// Degree mismatch.
	if _, err := Place(Config{DP: 3, TATP: 8}, topo); err == nil {
		t.Error("degree-24 config accepted on 32 dies")
	}
}

func TestChooseFactorPrefersRing(t *testing.T) {
	fh, fw, ok := chooseFactor(8, 4, 8, true)
	if !ok {
		t.Fatal("no factorization found")
	}
	r := mesh.Rect{R0: 0, C0: 0, R1: fh - 1, C1: fw - 1}
	if !r.HasRing() {
		t.Errorf("TATP factor %dx%d not ring-capable", fh, fw)
	}
}

func TestChooseFactorRespectsBounds(t *testing.T) {
	if _, _, ok := chooseFactor(64, 4, 8, true); ok {
		t.Error("factor exceeding grid accepted")
	}
	fh, fw, ok := chooseFactor(4, 4, 8, false)
	if !ok || fh*fw != 4 {
		t.Errorf("chooseFactor(4) = %d,%d,%v", fh, fw, ok)
	}
}

func TestEnumerateConfigs(t *testing.T) {
	cfgs := EnumerateConfigs(32, true, 0)
	if len(cfgs) == 0 {
		t.Fatal("no configs enumerated")
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if c.Degree() != 32 {
			t.Errorf("config %s degree %d", c, c.Degree())
		}
		if seen[c.String()] {
			t.Errorf("duplicate config %s", c)
		}
		seen[c.String()] = true
	}
	// Without TATP the list must only contain TATP=1 entries.
	for _, c := range EnumerateConfigs(32, false, 0) {
		if c.TATP > 1 {
			t.Errorf("TATP config %s in no-TATP enumeration", c)
		}
	}
	// Cap applies.
	for _, c := range EnumerateConfigs(32, true, 8) {
		if c.TATP > 8 {
			t.Errorf("config %s exceeds TATP cap", c)
		}
	}
}

func TestStrategyStrings(t *testing.T) {
	want := map[Strategy]string{TATP: "TATP", TP: "TP", SP: "SP", CP: "CP", DP: "DP"}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}
