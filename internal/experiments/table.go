// Package experiments contains one runner per table and figure of the
// paper's evaluation (§VIII). Each runner regenerates the same rows
// or series the paper reports — normalized latency breakdowns, memory
// occupancy, power efficiency, throughput sweeps, fault curves and
// cost-model accuracy — through the repository's simulator, and
// returns them as printable tables. cmd/tempbench and the root
// benchmark suite drive these runners.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one regenerated artefact.
type Table struct {
	// ID matches the per-experiment index of DESIGN.md (e.g.
	// "fig13").
	ID string
	// Title names the paper artefact.
	Title   string
	Headers []string
	Rows    [][]string
	// Notes carry the headline observations (speedups, sweet spots)
	// in the same terms the paper states them.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  * %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func gb(v float64) string { return fmt.Sprintf("%.1fGB", v/1e9) }
