package solver

import (
	"math/rand"
	"testing"

	"temp/internal/engine"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// popBenchSetup builds the evaluator and search space the population
// benchmarks share: GPT-3 6.7B on the evaluation wafer, the same
// problem the GA solves in tempsolve.
func popBenchSetup() (*evaluator, int, int) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	g := model.BlockGraph(m)
	space := parallel.EnumerateConfigs(w.Dies(), true, 0)
	ev := newEvaluator(&Analytic{W: w, M: m}, g.Ops, space)
	return ev, len(g.Ops), len(space)
}

// BenchmarkGAPopulationPricing times one GA generation's population
// pricing on the SoA delta path — breed clean copies, mutate a few
// genes, re-price only the invalidated terms. This is the
// candidate-throughput number the batched/delta pricing work targets.
// It reports individuals/sec.
func BenchmarkGAPopulationPricing(b *testing.B) {
	ev, n, nspace := popBenchSetup()
	const population = 32
	rng := rand.New(rand.NewSource(7))
	sp := newSoaPop(ev, population, n)
	for k := range sp.nextGenes {
		sp.nextGenes[k] = rng.Intn(nspace)
	}
	sp.markAllDirty()
	sp.price(1) // warm the term memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Breed a clean copy of each row, re-roll a few genes the way
		// mutation would, then re-price the population.
		for r := 0; r < population; r++ {
			sp.breedInto(r, r, r, 0)
		}
		for k := 0; k < population/4; k++ {
			sp.mutateGene(rng.Intn(population), rng.Intn(n), rng.Intn(nspace))
		}
		sp.price(1)
	}
	b.StopTimer()
	b.ReportMetric(float64(population*b.N)/b.Elapsed().Seconds(), "individuals/s")
}

// BenchmarkGAPopulationPricingFullWalk is the pre-delta baseline: the
// same workload priced by walking every individual through
// assignmentCost's memo lookups each generation.
func BenchmarkGAPopulationPricingFullWalk(b *testing.B) {
	ev, n, nspace := popBenchSetup()
	const population = 32
	rng := rand.New(rand.NewSource(7))
	pop := make([]Assignment, population)
	costs := make([]float64, population)
	for i := range pop {
		ind := make(Assignment, n)
		for j := range ind {
			ind[j] = rng.Intn(nspace)
		}
		pop[i] = ind
	}
	evalPop := func() {
		engine.ForEach(1, len(pop), func(i int) {
			costs[i] = ev.assignmentCost(pop[i])
		})
	}
	evalPop() // warm the term memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < population/4; k++ {
			pop[rng.Intn(population)][rng.Intn(n)] = rng.Intn(nspace)
		}
		evalPop()
	}
	b.StopTimer()
	b.ReportMetric(float64(population*b.N)/b.Elapsed().Seconds(), "individuals/s")
}

// TestGAGenerationAllocs pins the steady-state generation loop: with
// the term memo warm, one breed + mutate + price round over the whole
// population must stay within a tiny fixed allocation budget,
// independent of population size and genome length (the pre-SoA loop
// allocated per individual per gene).
func TestGAGenerationAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	ev, n, nspace := popBenchSetup()
	const population = 32
	rng := rand.New(rand.NewSource(11))
	sp := newSoaPop(ev, population, n)
	for k := range sp.nextGenes {
		sp.nextGenes[k] = rng.Intn(nspace)
	}
	sp.markAllDirty()
	sp.price(1)

	// A deterministic generation that only revisits already-priced
	// genes: every key it can dirty is memoized after the first round.
	generation := func() {
		for r := 0; r < population; r++ {
			sp.breedInto(r, r, r, 0)
		}
		for k := 0; k < population/4; k++ {
			i, j := k%population, (k*3)%n
			sp.mutateGene(i, j, sp.genes[((k+5)%population)*n+j])
		}
		sp.price(1)
	}
	generation() // price any pair terms the fixed schedule introduces
	avg := testing.AllocsPerRun(10, generation)
	if avg > 4 {
		t.Errorf("steady-state GA generation allocates %.1f objects, want ≤ 4", avg)
	}
}
