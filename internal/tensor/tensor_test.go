package tensor

import (
	"testing"
	"testing/quick"

	"temp/internal/unit"
)

func TestShapeElemsAndBytes(t *testing.T) {
	tests := []struct {
		s         Shape
		wantElems int64
		wantBytes float64
	}{
		{NewShape("w", 0, 0, 4096, 4096, unit.FP16), 4096 * 4096, 4096 * 4096 * 2},
		{Activation("a", 8, 2048, 4096, unit.FP16), 8 * 2048 * 4096, 8 * 2048 * 4096 * 2},
		{NewShape("scalar", 0, 0, 0, 0, unit.FP32), 0, 0},
		{Weight("w2", 10, 20, unit.FP32), 200, 800},
	}
	for _, tc := range tests {
		if got := tc.s.Elems(); got != tc.wantElems {
			t.Errorf("%v.Elems() = %d, want %d", tc.s, got, tc.wantElems)
		}
		if got := tc.s.Bytes(); got != tc.wantBytes {
			t.Errorf("%v.Bytes() = %v, want %v", tc.s, got, tc.wantBytes)
		}
	}
}

func TestShapeString(t *testing.T) {
	s := NewShape("act", 8, 2048, 4096, 0, unit.FP16)
	want := "act[B=8 M=2048 N=4096]fp16"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestPartitionWays(t *testing.T) {
	p := SplitBy(map[Dim]int{B: 2, K: 4})
	if got := p.Ways(); got != 8 {
		t.Errorf("Ways() = %d, want 8", got)
	}
	if got := p.Devices(); got != 8 {
		t.Errorf("Devices() = %d, want 8", got)
	}
	pr := p.WithReplicas(2)
	if got := pr.Devices(); got != 16 {
		t.Errorf("Devices() with replicas = %d, want 16", got)
	}
}

func TestSplitByPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SplitBy with factor 0 did not panic")
		}
	}()
	SplitBy(map[Dim]int{B: 0})
}

func TestCompose(t *testing.T) {
	dp := SplitBy(map[Dim]int{B: 2})
	tp := SplitBy(map[Dim]int{K: 4}).WithReplicas(2)
	c := dp.Compose(tp)
	if c.Split[B] != 2 || c.Split[K] != 4 {
		t.Errorf("Compose split = %v", c.Split)
	}
	if c.Replicas != 2 {
		t.Errorf("Compose replicas = %d, want 2", c.Replicas)
	}
	if c.Ways() != 8 {
		t.Errorf("Compose ways = %d, want 8", c.Ways())
	}
}

func TestShardShape(t *testing.T) {
	s := NewShape("w", 0, 0, 4096, 8192, unit.FP16)
	p := SplitBy(map[Dim]int{N: 4, K: 2})
	sh := p.ShardShape(s)
	if sh.Ext[N] != 1024 || sh.Ext[K] != 4096 {
		t.Errorf("ShardShape = %v", sh)
	}
	// Splits along absent dims are ignored.
	q := SplitBy(map[Dim]int{B: 8})
	if got := q.ShardShape(s); got.Elems() != s.Elems() {
		t.Errorf("absent-dim split changed size: %v", got)
	}
}

func TestShardShapeRaggedCeil(t *testing.T) {
	s := NewShape("w", 0, 0, 10, 0, unit.FP16)
	p := SplitBy(map[Dim]int{N: 3})
	if got := p.ShardShape(s).Ext[N]; got != 4 {
		t.Errorf("ragged shard extent = %d, want ceil(10/3)=4", got)
	}
}

func TestGroupBytesReplicationInflation(t *testing.T) {
	s := Activation("act", 8, 2048, 4096, unit.FP16)
	noRep := SplitBy(map[Dim]int{M: 4})
	rep := Unit().WithReplicas(4)
	if got, want := noRep.GroupBytes(s), s.Bytes(); got != want {
		t.Errorf("replication-free GroupBytes = %v, want %v", got, want)
	}
	if got, want := rep.GroupBytes(s), 4*s.Bytes(); got != want {
		t.Errorf("replicated GroupBytes = %v, want %v", got, want)
	}
}

// Property: for divisible splits, per-shard bytes × ways == total
// bytes (partitioning conserves data volume when replica count is 1).
func TestPartitionConservesBytes(t *testing.T) {
	f := func(bs, ms uint8, fb, fm uint8) bool {
		b := int64(bs%16+1) * 8
		m := int64(ms%16+1) * 64
		factB := int(fb%3 + 1) // 1..3 -> choose divisors of 8
		factM := int(fm%4 + 1)
		divB := []int{1, 2, 4}[factB-1]
		divM := []int{1, 2, 4, 8}[factM-1]
		s := Activation("a", b, m, 128, unit.FP16)
		p := SplitBy(map[Dim]int{B: divB, M: divM})
		return p.ShardBytes(s)*float64(p.Ways()) == s.Bytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReshardBytes(t *testing.T) {
	s := Activation("a", 8, 2048, 4096, unit.FP16)
	p := SplitBy(map[Dim]int{M: 4})
	q := SplitBy(map[Dim]int{B: 4})
	if got := ReshardBytes(s, p, p); got != 0 {
		t.Errorf("identical layouts should be free, got %v", got)
	}
	if got := ReshardBytes(s, p, q); got != q.ShardBytes(s) {
		t.Errorf("layout change cost = %v, want %v", got, q.ShardBytes(s))
	}
	// A split-factor change along an absent dim is free.
	w := Weight("w", 128, 128, unit.FP16)
	pb := SplitBy(map[Dim]int{B: 2})
	qb := SplitBy(map[Dim]int{B: 8})
	if got := ReshardBytes(w, pb, qb); got != 0 {
		t.Errorf("absent-dim reshard should be free, got %v", got)
	}
}

func TestPartitionString(t *testing.T) {
	p := SplitBy(map[Dim]int{B: 2, K: 4}).WithReplicas(2)
	if got := p.String(); got != "split[B/2 K/4]×2rep" {
		t.Errorf("String() = %q", got)
	}
}

func TestDimString(t *testing.T) {
	names := map[Dim]string{B: "B", M: "M", N: "N", K: "K"}
	for d, want := range names {
		if d.String() != want {
			t.Errorf("Dim %d String = %q, want %q", d, d.String(), want)
		}
	}
}
