package sim

import (
	"context"
	"fmt"
	"time"

	"temp/internal/baselines"
	"temp/internal/engine"
	"temp/internal/fault"
	"temp/internal/model"
	"temp/internal/parallel"
	"temp/internal/solver"
	"temp/internal/spec"
)

// RunScenario evaluates one resolved scenario:
//
//   - an explicit configuration is priced directly through the
//     evaluation engine (memoized, worker-bounded),
//   - Wafers > 1 runs the §VIII-E multi-wafer assembly,
//   - otherwise the system's configuration space is swept for its
//     best feasible configuration (the footing every figure uses).
func RunScenario(sc spec.Scenario) (baselines.Result, error) {
	sys := sc.System
	if sc.Cost != nil {
		// The cost stage retargets every evaluation of this scenario
		// at the chosen fidelity tier; the backend key is part of the
		// engine's memo key, so tiers never share cache entries.
		sys.Backend = sc.Cost.Key
	}
	if sc.Config != nil {
		opts := sys.Opts
		if sc.Wafers > 1 {
			opts.Wafers = sc.Wafers
		}
		b, err := engine.EvaluateJob(engine.Job{
			Model: sc.Model, Wafer: sc.Wafer, Config: *sc.Config,
			Opts: opts, Backend: sys.Backend,
		})
		if err != nil {
			return baselines.Result{}, fmt.Errorf("sim: scenario %q: %w", sc.Name, err)
		}
		return baselines.Result{
			System: sys.Name, Config: *sc.Config,
			Breakdown: b, Feasible: !b.OOM(),
		}, nil
	}
	if sc.Wafers > 1 {
		return MultiWafer(sys, sc.Model, sc.Wafer, sc.Wafers)
	}
	return baselines.Best(sys, sc.Model, sc.Wafer)
}

// SolverOutcome reports a scenario's optional partition-mapping
// search stage: which strategy ran, what it found, and the dominant
// per-operator configuration it assigns.
type SolverOutcome struct {
	// Strategy is the strategy that ran; Winner names the portfolio
	// racer that produced the result (empty otherwise).
	Strategy string
	Winner   string
	// Backend is the cost backend whose operator model priced the
	// search exactly ("analytic" unless the scenario's cost stage
	// retargeted it).
	Backend string
	// DPCost and FinalCost are the chain-DP seed and refined costs.
	DPCost, FinalCost float64
	// Evaluations counts distinct exact cost-model terms priced;
	// ScreenEvaluations counts cheap surrogate-tier terms during
	// multi-fidelity search.
	Evaluations       int
	ScreenEvaluations int
	// Elapsed is the search wall-clock time.
	Elapsed time.Duration
	// Dominant is the configuration most operators are assigned;
	// Share is its fraction of operators.
	Dominant parallel.Config
	Share    float64
	// Assignment is the per-operator strategy-space assignment.
	Assignment solver.Assignment
	// RobustMasks is the fault-mask ensemble size when the stage ran
	// with the robust objective (0 otherwise).
	RobustMasks int
}

// ScenarioResult pairs one scenario with its outcome. Err is set when
// the scenario could not be evaluated (e.g. nothing placeable).
type ScenarioResult struct {
	Name   string
	Result baselines.Result
	// FaultNormTput is the §VIII-F normalized throughput under the
	// scenario's fault injection; valid only when Faulted is true.
	FaultNormTput float64
	Faulted       bool
	// Solver is the optional search-stage outcome.
	Solver *SolverOutcome
	// Recovery is the optional repair-stage record (FaultSpec.Repair).
	Recovery *fault.Recovery
	// Campaign is the optional survivability grid
	// (FaultSpec.Campaign).
	Campaign *fault.CampaignResult
	Err      error
}

// runSolverStage runs a scenario's search stage: the registered
// strategy searches the per-operator strategy space of the scenario's
// model/wafer pair under the stage's budget, priced by the scenario's
// cost backend (analytic unless the cost stage retargets it). The
// multifid strategy — and the portfolio, which adds a multifid racer
// when screening is available — additionally gets the surrogate
// tier's operator DNN as the cheap screening model. Deterministic:
// the strategy is seeded, surrogate training is seeded, and the
// evaluators are pure.
func runSolverStage(ctx context.Context, sc spec.Scenario) (*SolverOutcome, error) {
	g := model.BlockGraph(sc.Model)
	space := parallel.EnumerateConfigs(sc.Wafer.Dies(), true, 0)

	backendKey := ""
	if sc.Cost != nil {
		backendKey = sc.Cost.Key
	}
	// The surrogate screen reuses the cost stage's training seed when
	// one is pinned (one spec → one reproducible run), falling back
	// to the solver stage's own seed so -seed behaves identically on
	// the scenario and direct CLI paths.
	screenSeed := sc.Solver.Seed
	if s := sc.Cost.SurrogateSeed(); s != 0 {
		screenSeed = s
	}
	cm, screen, err := solver.SearchModels(sc.Solver.Name, backendKey, sc.Model, sc.Wafer, screenSeed)
	if err != nil {
		return nil, fmt.Errorf("sim: scenario %q solver stage: %w", sc.Name, err)
	}
	robustMasks := 0
	if rs := sc.Solver.Robust; rs != nil {
		rm, err := fault.NewRobustModel(cm, sc.Model, sc.Wafer,
			rs.Injection(), rs.Masks, rs.RandSeed(), rs.FaultWeight)
		if err != nil {
			return nil, fmt.Errorf("sim: scenario %q solver stage: %w", sc.Name, err)
		}
		cm = rm
		robustMasks = rm.Masks()
	}
	p := solver.Problem{Graph: g, Space: space, Model: cm, Screen: screen}
	b := sc.Solver.Budget
	if b.Workers == 0 {
		// Spec-declared stages inherit the engine's -workers bound so
		// scenario batches do not oversubscribe the machine.
		b.Workers = engine.Workers()
	}
	a, stats := sc.Solver.Strategy.Solve(ctx, p, b)
	idx, share := solver.Uniform(a)
	name := "analytic"
	if backendKey != "" {
		name = backendKey
	}
	out := &SolverOutcome{
		Strategy: stats.Strategy, Winner: stats.Winner, Backend: name,
		DPCost: stats.DPCost, FinalCost: stats.FinalCost,
		Evaluations: stats.Evaluations, ScreenEvaluations: stats.ScreenEvaluations,
		Elapsed: stats.Elapsed,
		Share:   share, Assignment: a,
		RobustMasks: robustMasks,
	}
	if len(space) > 0 {
		out.Dominant = space[idx]
	}
	return out, nil
}

// runOne evaluates a scenario including its optional solver and fault
// stages. ctx cancellation surfaces as the scenario's Err; a solve
// already in progress returns its best-so-far before the error is
// stamped (the solver's run.stop checks the same context).
func runOne(ctx context.Context, sc spec.Scenario) ScenarioResult {
	if ctx.Err() != nil {
		return ScenarioResult{Name: sc.Name, Err: ctx.Err()}
	}
	r, err := RunScenario(sc)
	out := ScenarioResult{Name: sc.Name, Result: r, Err: err}
	if err == nil && sc.Solver != nil {
		out.Solver, out.Err = runSolverStage(ctx, sc)
		err = out.Err
	}
	if err == nil && ctx.Err() != nil {
		out.Err = ctx.Err()
		return out
	}
	if err != nil || sc.Fault == nil {
		return out
	}
	in := fault.Injection{
		LinkRate:    sc.Fault.LinkRate,
		CoreRate:    sc.Fault.CoreRate,
		CoresPerDie: sc.Fault.CoresPerDie,
	}
	opts := sc.System.Opts
	if sc.Wafers > 1 {
		opts.Wafers = sc.Wafers
	}
	backendKey := ""
	if sc.Cost != nil {
		backendKey = sc.Cost.Key
	}
	if in.Active() {
		out.FaultNormTput, out.Err = fault.NormalizedThroughputWith(backendKey, sc.Model, sc.Wafer, r.Config, opts,
			in, sc.Fault.TrialCount(), sc.Fault.RandSeed())
		if out.Err != nil {
			return out
		}
		out.Faulted = true
		if sc.Fault.Repair != nil {
			ro, err := sc.Fault.Repair.Options()
			if err == nil {
				ro.Backend = backendKey
				if ro.Budget.Workers == 0 {
					ro.Budget.Workers = engine.Workers()
				}
				var rec fault.Recovery
				rec, err = fault.RepairInjected(sc.Model, sc.Wafer, r.Config, opts,
					in, sc.Fault.RandSeed(), ro)
				if err == nil {
					out.Recovery = &rec
				}
			}
			if err != nil {
				out.Err = err
				return out
			}
		}
	}
	if cs := sc.Fault.Campaign; cs != nil {
		c := fault.Campaign{
			Model: sc.Model, Wafer: sc.Wafer, Config: r.Config, Opts: opts,
			Backend:   backendKey,
			LinkRates: cs.LinkRates, CoreRates: cs.CoreRates,
			CoresPerDie: cs.CoresPerDie, Trials: cs.Trials, Seed: cs.Seed,
			Workers: engine.Workers(),
		}
		cr, err := c.Run()
		if err != nil {
			out.Err = err
			return out
		}
		out.Campaign = &cr
	}
	return out
}

// RunScenarios fans a scenario batch out over the evaluation engine
// and returns results in input order regardless of completion order.
// Results are deterministic: the cost model is pure and each
// scenario's fault stage seeds its own RNG, so any worker count
// produces the same output.
func RunScenarios(scs []spec.Scenario) []ScenarioResult {
	return RunScenariosCtx(context.Background(), scs)
}

// RunScenariosCtx is RunScenarios with cancellation: scenarios not
// yet started when ctx ends report ctx.Err(); a scenario mid-solve
// stops at its next budget check and reports the same.
func RunScenariosCtx(ctx context.Context, scs []spec.Scenario) []ScenarioResult {
	out := make([]ScenarioResult, len(scs))
	engine.Map(len(scs), func(i int) {
		out[i] = runOne(ctx, scs[i])
	})
	return out
}

// RunScenarioSpecs resolves and runs serialized scenario specs. A
// spec that fails to resolve contributes an error result rather than
// aborting the batch.
func RunScenarioSpecs(specs []spec.ScenarioSpec) []ScenarioResult {
	return RunScenarioSpecsWithSolver(specs, nil)
}

// RunScenarioSpecsWithSolver is RunScenarioSpecs with an optional
// solver-stage override: when non-nil, every scenario in the batch
// runs the given search stage in place of (or in addition to) the one
// its spec declares — the CLI -strategy/-budget flags.
func RunScenarioSpecsWithSolver(specs []spec.ScenarioSpec, override *spec.SolverStage) []ScenarioResult {
	return RunScenarioSpecsWithStages(specs, override, nil)
}

// RunScenarioSpecsWithStages is RunScenarioSpecs with optional
// solver-stage and cost-stage overrides — the CLI
// -strategy/-budget/-backend flags. A non-nil stage replaces the
// corresponding spec-declared stage on every scenario in the batch.
func RunScenarioSpecsWithStages(specs []spec.ScenarioSpec, override *spec.SolverStage, costStage *spec.CostStage) []ScenarioResult {
	return RunScenarioSpecsWithStagesCtx(context.Background(), specs, override, costStage)
}

// RunScenarioSpecsWithStagesCtx is RunScenarioSpecsWithStages with
// cancellation (see RunScenariosCtx).
func RunScenarioSpecsWithStagesCtx(ctx context.Context, specs []spec.ScenarioSpec, override *spec.SolverStage, costStage *spec.CostStage) []ScenarioResult {
	scs := make([]spec.Scenario, len(specs))
	errs := make([]error, len(specs))
	for i, s := range specs {
		scs[i], errs[i] = s.Resolve()
		if errs[i] == nil && override != nil {
			scs[i].Solver = override
		}
		if errs[i] == nil && costStage != nil {
			scs[i].Cost = costStage
		}
	}
	out := make([]ScenarioResult, len(specs))
	engine.Map(len(specs), func(i int) {
		if errs[i] != nil {
			out[i] = ScenarioResult{Name: specs[i].Name, Err: errs[i]}
			return
		}
		out[i] = runOne(ctx, scs[i])
	})
	return out
}
