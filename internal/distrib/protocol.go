// Package distrib is a coordinator/worker fabric that shards
// engine-shaped workloads (experiment tables, scenario batches, fault
// campaigns, solver races) across worker processes and merges their
// results deterministically.
//
// The wire protocol is deliberately small: length-prefixed,
// checksummed frames, each carrying one gob-encoded envelope. Every
// frame is a standalone gob stream (a fresh encoder per frame,
// mirroring the disk memo's record framing) so a reader never depends
// on state from earlier frames and a dropped connection never leaves
// a decoder mid-stream. The CRC makes corruption (a flipped bit on a
// flaky link, a chaos-injected byte) a deterministic protocol error
// instead of a gob-decode lottery.
//
//	frame : len u32le | crc32(payload) u32le | gob(envelope)
//
// The coordinator speaks the same protocol over a worker subprocess's
// stdin/stdout or over a TCP connection (multi-machine via -listen /
// -connect). Task payloads are opaque []byte — the kind registry
// (registry.go) maps a kind string to the handler that decodes,
// executes, and re-encodes them, so the fabric itself stays ignorant
// of every workload's shape.
//
// Liveness rides on the same frame stream: the coordinator pings each
// worker every heartbeat interval, and any inbound frame (pong,
// result, stats) proves the worker alive. A worker that produces no
// frames for N consecutive intervals is declared dead and its
// in-flight shards requeue — long before TCP keepalive would notice a
// stalled peer.
package distrib

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
)

// protoVersion is validated in both directions during the hello
// exchange; bump it whenever the envelope or frame shape changes.
// Version 2 added the frame CRC and the ping/pong/cancel/memo
// messages.
const protoVersion = 2

// maxFrame bounds a frame's length; anything larger is corruption.
const maxFrame = 1 << 30

// frameHeaderSize is the length prefix plus the payload checksum.
const frameHeaderSize = 8

type msgType uint8

const (
	msgHello msgType = iota + 1
	msgShard
	msgResult
	msgDone
	msgStats
	msgPing
	msgPong
	msgCancel
	msgMemo
)

// envelope is the single frame shape; exactly one pointer field is
// non-nil, selected by Type (pings and dones travel header-only).
type envelope struct {
	Type   msgType
	Hello  *helloMsg
	Shard  *shardMsg
	Result *resultMsg
	Stats  *statsMsg
	Beat   *beatMsg
	Cancel *cancelMsg
	Memo   *memoMsg
}

// helloMsg is the first frame in each direction. HasMemo tells the
// coordinator whether the worker already has a persistent memo
// attached (shared directory), so memo sync can skip it.
type helloMsg struct {
	Version int
	PID     int
	HasMemo bool
}

// shardMsg carries a contiguous run of tasks of one kind. Start is
// the global index of the first task, so results are index-addressed
// into the coordinator's pre-sized output slice no matter which
// worker executes the shard or when.
type shardMsg struct {
	Seq      uint64
	Kind     string
	Start    int
	Payloads [][]byte
}

// resultMsg answers one shard: Payloads[i] / Errs[i] correspond to
// the shard's task i (global index Start+i). Errs entries are ""
// on success; handler errors and worker-side panics travel as text.
type resultMsg struct {
	Seq      uint64
	Start    int
	Payloads [][]byte
	Errs     []string
}

// beatMsg is a heartbeat ping or its pong echo. Seq ties a pong to
// its ping for debugging; liveness itself only needs the frame.
type beatMsg struct {
	Seq uint64
}

// cancelMsg asks the worker to abandon an in-flight shard (the
// coordinator's Run context was cancelled, or the shard timed out and
// was requeued elsewhere). Best-effort: a late result for a cancelled
// seq is simply dropped.
type cancelMsg struct {
	Seq uint64
}

// memoMsg ships a serialized DiskMemo segment to a worker that lacks
// the shared memo directory, so remote (shared-nothing) workers start
// warm. CRC covers Data; a mismatch means the segment is discarded
// and the worker starts cold — never a wrong price.
type memoMsg struct {
	Records int
	Data    []byte
	CRC     uint32
}

// statsMsg is the worker's reply to done: its lifetime counters plus
// its engine cache statistics, aggregated coordinator-side.
type statsMsg struct {
	Shards      int
	Tasks       int
	Hits        int64
	Misses      int64
	DiskHits    int64
	BatchCalls  int64
	BatchedJobs int64
}

// writeFrame encodes env as one standalone gob stream and writes the
// whole frame — header and payload — in a single Write on the
// underlying stream (the chaos wrapper relies on one Write per frame
// to inject faults at frame granularity).
func writeFrame(w *bufio.Writer, env *envelope) error {
	buf := bytes.NewBuffer(make([]byte, frameHeaderSize, 512))
	if err := gob.NewEncoder(buf).Encode(env); err != nil {
		return fmt.Errorf("distrib: encode frame: %w", err)
	}
	payload := buf.Bytes()[frameHeaderSize:]
	if len(payload) > maxFrame {
		return fmt.Errorf("distrib: frame too large (%d bytes)", len(payload))
	}
	frame := buf.Bytes()
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(frame); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one length-prefixed envelope, validating the
// payload checksum before decoding.
func readFrame(r *bufio.Reader) (*envelope, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxFrame {
		return nil, fmt.Errorf("distrib: bad frame length %d", n)
	}
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	if got := crc32.ChecksumIEEE(buf); got != sum {
		return nil, fmt.Errorf("distrib: frame checksum mismatch (want %08x, got %08x)", sum, got)
	}
	var env envelope
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&env); err != nil {
		return nil, fmt.Errorf("distrib: decode frame: %w", err)
	}
	return &env, nil
}

// exchangeHello sends our hello and validates the peer's, returning
// the peer's hello (the coordinator inspects HasMemo for memo sync).
func exchangeHello(r *bufio.Reader, w *bufio.Writer, pid int, hasMemo bool) (*helloMsg, error) {
	if err := writeFrame(w, &envelope{Type: msgHello, Hello: &helloMsg{Version: protoVersion, PID: pid, HasMemo: hasMemo}}); err != nil {
		return nil, err
	}
	env, err := readFrame(r)
	if err != nil {
		return nil, err
	}
	if env.Type != msgHello || env.Hello == nil {
		return nil, fmt.Errorf("distrib: expected hello, got message type %d", env.Type)
	}
	if env.Hello.Version != protoVersion {
		return nil, fmt.Errorf("distrib: protocol version mismatch: have %d, peer %d", protoVersion, env.Hello.Version)
	}
	return env.Hello, nil
}
