// Package engine is the concurrent evaluation engine behind every
// design-space sweep in the repository. The cost model is a pure
// function of (model, wafer, config, options), so the engine memoizes
// its results in a goroutine-safe sharded cache and fans batches of
// configurations out across a bounded worker pool. The solver's
// genetic stage, the experiment runners and all three CLIs route
// their sweeps through it: figures that revisit the same
// configuration space (Fig. 13 and Fig. 14 sweep identical systems)
// pay for each evaluation once, and multi-core runners evaluate the
// rest in parallel.
//
// Below the memo layer, every worker also shares the pricing hot
// path's structural caches — interned topologies, per-topology
// placement/orchestration state and compiled collective-lowering
// templates (see DESIGN.md "Hot-path architecture") — because those
// key off process-global frozen topologies. A Sweep or GA population
// therefore lowers each distinct group structure once no matter how
// many candidates or workers touch it; TestSweepSharesHotPathCaches
// pins both the -race safety and the parallel/serial determinism of
// that sharing.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// Job identifies one cost-model evaluation. All fields are plain
// comparable values, so a Job doubles as the cache key.
type Job struct {
	Model  model.Config
	Wafer  hw.Wafer
	Config parallel.Config
	Opts   cost.Options
	// Backend is the canonical cost-backend key pricing the job
	// ("replay", "surrogate@seed=7"; see cost.BackendKey). Empty
	// means the pool's default backend — the analytic tier unless
	// SetDefaultBackend retargeted it. The resolved key is part of
	// the memo key, so tiers never share cache entries.
	Backend string
}

// Result is the outcome of one Job.
type Result struct {
	Breakdown cost.Breakdown
	Err       error
}

// shardCount is the cache's baseline shard count, keeping lock
// contention off the hot path; must be a power of two. SetWorkers
// grows the stripe count when the worker bound outstrips it (see
// shardsFor).
const shardCount = 64

// Cache is a goroutine-safe sharded memoization cache over
// cost.Evaluate, built on the shared Memo helper. The cost model is
// deterministic, so concurrent misses on the same key may compute
// twice but always store the same value; hit/miss counters track
// effectiveness. An optional persistent DiskMemo sits under the
// in-memory memo: in-memory misses probe it before pricing and
// freshly priced results are appended to it, so repeated runs
// warm-start with ~zero exact evaluations.
type Cache struct {
	memo        *Memo[Job, Result]
	disk        atomic.Pointer[DiskMemo]
	hits        atomic.Int64
	misses      atomic.Int64
	diskHits    atomic.Int64
	batchCalls  atomic.Int64
	batchedJobs atomic.Int64
	// Coalescer telemetry: flushes, the jobs they priced, and the
	// subset of those jobs that shared a flush with at least one
	// other submitter (the cross-request batching win).
	coalFlushes atomic.Int64
	coalJobs    atomic.Int64
	coalShared  atomic.Int64
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return NewCacheSharded(shardCount)
}

// NewCacheSharded returns an empty cache striped over at least the
// given shard count.
func NewCacheSharded(shards int) *Cache {
	if shards < shardCount {
		shards = shardCount
	}
	return &Cache{memo: NewMemo[Job, Result](shards, jobHash)}
}

// shardsFor picks the stripe count for a worker bound: the baseline,
// grown to keep at least four stripes per worker (power of two).
func shardsFor(workers int) int {
	n := shardCount
	for n < 4*workers {
		n <<= 1
	}
	return n
}

// resharded returns a new cache striped over at least shards stripes
// with every entry, counter and the disk memo carried over. Callers
// swap it in atomically (see SetWorkers); evaluations racing with the
// swap may price against the old cache, which stays correct — the
// cost model is deterministic — and merely re-prices on first touch
// of the new cache.
func (c *Cache) resharded(shards int) *Cache {
	nc := NewCacheSharded(shards)
	c.memo.Range(func(k Job, v Result) {
		nc.memo.Get(k, func() Result { return v })
	})
	nc.disk.Store(c.disk.Load())
	nc.hits.Store(c.hits.Load())
	nc.misses.Store(c.misses.Load())
	nc.diskHits.Store(c.diskHits.Load())
	nc.batchCalls.Store(c.batchCalls.Load())
	nc.batchedJobs.Store(c.batchedJobs.Load())
	nc.coalFlushes.Store(c.coalFlushes.Load())
	nc.coalJobs.Store(c.coalJobs.Load())
	nc.coalShared.Store(c.coalShared.Load())
	return nc
}

// SetDiskMemo attaches (or, with nil, detaches) a persistent memo
// under the cache.
func (c *Cache) SetDiskMemo(d *DiskMemo) { c.disk.Store(d) }

// DiskMemo returns the attached persistent memo, or nil.
func (c *Cache) DiskMemo() *DiskMemo { return c.disk.Load() }

// jobHash mixes the discriminating key fields with FNV-1a. Only
// shard selection depends on it, so it hashes a representative
// subset of the key, not every field.
func jobHash(j Job) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		h ^= v
		h *= prime
	}
	for i := 0; i < len(j.Model.Name); i++ {
		mix(uint64(j.Model.Name[i]))
	}
	mix(uint64(j.Model.Seq))
	mix(uint64(j.Model.Batch))
	mix(uint64(j.Model.Layers))
	c := j.Config
	mix(uint64(c.DP))
	mix(uint64(c.TP))
	mix(uint64(c.SP))
	mix(uint64(c.CP))
	mix(uint64(c.TATP))
	mix(uint64(c.PP))
	if c.FSDP {
		mix(1)
	}
	if c.MegatronSP {
		mix(2)
	}
	mix(uint64(j.Wafer.Rows))
	mix(uint64(j.Wafer.Cols))
	mix(uint64(j.Opts.Engine))
	mix(uint64(j.Opts.Recompute))
	mix(uint64(j.Opts.Microbatch))
	mix(uint64(j.Opts.Wafers))
	for i := 0; i < len(j.Backend); i++ {
		mix(uint64(j.Backend[i]))
	}
	return h
}

// priceJob runs one evaluation through the job's backend; the empty
// key is the analytic tier's direct fast path.
func priceJob(j Job) Result {
	if j.Backend == "" {
		b, err := cost.Evaluate(j.Model, j.Wafer, j.Config, j.Opts)
		return Result{Breakdown: b, Err: err}
	}
	be, err := cost.NewBackend(j.Backend)
	if err != nil {
		return Result{Err: err}
	}
	b, err := be.Price(j.Model, j.Wafer, j.Config, j.Opts)
	return Result{Breakdown: b, Err: err}
}

// Evaluate returns the memoized cost-model result for one job.
func (c *Cache) Evaluate(j Job) (cost.Breakdown, error) {
	// Normalize so equivalent configurations (and equivalent backend
	// spellings) share one entry; the cost model normalizes
	// internally, so the result is identical.
	j.Config = j.Config.Normalize()
	j.Backend = cost.CanonicalBackendKey(j.Backend)
	r, _, _ := c.get(j, func() Result { return priceJob(j) })
	return r.Breakdown, r.Err
}

// get serves a normalized job through the memo hierarchy: in-memory
// memo, then the disk memo (when attached), then price. It maintains
// the hit/miss/disk counters; price runs at most once per distinct
// key and its result is persisted.
func (c *Cache) get(j Job, price func() Result) (r Result, fresh, fromDisk bool) {
	r, fresh = c.memo.Get(j, func() Result {
		if d := c.disk.Load(); d != nil {
			if dr, ok := d.Lookup(j); ok {
				fromDisk = true
				return dr
			}
		}
		res := price()
		if d := c.disk.Load(); d != nil {
			d.Store(j, res)
		}
		return res
	})
	switch {
	case !fresh:
		c.hits.Add(1)
	case fromDisk:
		c.diskHits.Add(1)
	default:
		c.misses.Add(1)
	}
	return r, fresh, fromDisk
}

// Stats reports cache effectiveness counters. The JSON tags make a
// snapshot directly embeddable in machine-readable outputs (tempbench
// -json, the tempserve /metrics endpoint).
type Stats struct {
	// Hits and Misses count in-memory cache hits and exact (priced)
	// evaluations; DiskHits counts in-memory misses served from the
	// persistent memo without pricing.
	Hits     int64 `json:"cache_hits"`
	Misses   int64 `json:"cache_misses"`
	DiskHits int64 `json:"cache_disk_hits"`
	// BatchCalls and BatchedJobs count batched-kernel invocations and
	// the candidates they covered (Sweep's miss path).
	BatchCalls  int64 `json:"batch_calls"`
	BatchedJobs int64 `json:"batched_jobs"`
	Entries     int   `json:"entries"`
	// DiskEntries is the persistent memo's record count (0 when none
	// is attached).
	DiskEntries int `json:"disk_entries"`
	// DiskCompacted and DiskDropped report what the persistent memo's
	// open-time recovery discarded: duplicate records rewritten away
	// by auto-compaction, and corrupt tail bytes dropped. Both are 0
	// when no memo is attached or the file was clean.
	DiskCompacted int `json:"disk_compacted_records"`
	DiskDropped   int `json:"disk_dropped_bytes"`
	// CoalesceFlushes/CoalescedJobs/CoalesceShared report the
	// cross-request miss coalescer: batched flushes, the distinct jobs
	// they priced, and the jobs that flushed together with another
	// submitter's (0 unless a Coalescer is attached).
	CoalesceFlushes int64 `json:"coalesce_flushes"`
	CoalescedJobs   int64 `json:"coalesced_jobs"`
	CoalesceShared  int64 `json:"coalesce_shared_jobs"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits: c.hits.Load(), Misses: c.misses.Load(), DiskHits: c.diskHits.Load(),
		BatchCalls: c.batchCalls.Load(), BatchedJobs: c.batchedJobs.Load(),
		CoalesceFlushes: c.coalFlushes.Load(), CoalescedJobs: c.coalJobs.Load(),
		CoalesceShared: c.coalShared.Load(),
		Entries:        c.memo.Len(),
	}
	if d := c.disk.Load(); d != nil {
		s.DiskEntries = d.Len()
		s.DiskCompacted = d.Compacted()
		_, s.DiskDropped = d.Recovered()
	}
	return s
}

// Pool couples a worker count with a cache. The zero worker count
// means runtime.GOMAXPROCS(0). The bound is global across nested
// fan-outs: Map calls may nest freely (experiments → systems →
// config sweeps), but every cost-model evaluation routed through the
// pool acquires one of its workers tokens, so at most workers
// evaluations compute concurrently no matter how deep the
// orchestration stacks.
type Pool struct {
	workers int
	cache   *Cache
	// backend is the default cost-backend key injected into jobs that
	// leave Job.Backend empty ("" = analytic). It retargets every
	// sweep routed through the pool — the CLI -backend axis.
	backend string
	// sem bounds concurrent leaf evaluations. Only leaves (the
	// actual cost-model computation, which never re-enters the
	// engine) hold a token, so nested Map orchestration cannot
	// deadlock against it.
	sem chan struct{}
	// coal, when non-nil, merges concurrent Sweeps' cache misses
	// across callers before batched pricing (the serving daemon's
	// cross-request batching hook; see Coalescer).
	coal *Coalescer
}

// New returns a pool with its own cache. workers <= 0 selects
// runtime.GOMAXPROCS(0).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers, cache: NewCache(), sem: make(chan struct{}, workers)}
}

// Do runs one leaf computation under the pool's global evaluation
// bound. f must not call back into the pool (it would deadlock the
// token it holds); the engine's own evaluation paths already route
// through Do, so callers only need it for work that bypasses the
// cache (e.g. cluster evaluations).
func (p *Pool) Do(f func()) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	f()
}

// Workers returns the pool's worker bound.
func (p *Pool) Workers() int { return p.workers }

// Cache returns the pool's cache.
func (p *Pool) Cache() *Cache { return p.cache }

// Evaluate runs one memoized cost-model evaluation under the pool's
// global bound.
func (p *Pool) Evaluate(m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options) (cost.Breakdown, error) {
	return p.evaluate(Job{Model: m, Wafer: w, Config: cfg, Opts: o})
}

// EvaluateJob runs one memoized evaluation of an explicit job
// (including its backend key) under the pool's global bound.
func (p *Pool) EvaluateJob(j Job) (cost.Breakdown, error) {
	return p.evaluate(j)
}

// normalize canonicalizes a job for cache keying: equivalent
// configurations and backend spellings share one entry, and the
// pool's default backend is resolved in.
func (p *Pool) normalize(j Job) Job {
	j.Config = j.Config.Normalize()
	if j.Backend == "" {
		j.Backend = p.backend
	}
	j.Backend = cost.CanonicalBackendKey(j.Backend)
	return j
}

// evaluate serves a job from the cache, acquiring a worker token
// only for the miss path (the actual cost-model computation).
func (p *Pool) evaluate(j Job) (cost.Breakdown, error) {
	j = p.normalize(j)
	r, _, _ := p.cache.get(j, func() Result {
		var res Result
		p.Do(func() {
			res = priceJob(j)
		})
		return res
	})
	return r.Breakdown, r.Err
}

// jobFamily is what a batch of candidates shares: everything in a Job
// except the parallel configuration. Sweep groups cache misses by
// family so each group prices through one batched kernel invocation,
// amortizing topology, block-graph and lowering-state lookups across
// the whole group.
type jobFamily struct {
	Model   model.Config
	Wafer   hw.Wafer
	Opts    cost.Options
	Backend string
}

// sweepChunkCap bounds one batched pricing call so a large miss set
// still spreads across the worker pool.
const sweepChunkCap = 64

// Sweep fans the jobs out across the pool's workers and returns
// their results in input order, regardless of completion order.
//
// Misses are priced in batches: after probing the in-memory memo and
// the disk memo, the distinct unpriced jobs are grouped by family and
// chunked through cost.PriceBatch, so a population-sized sweep pays
// the per-family setup once per chunk instead of once per candidate.
// Results and cache-counter semantics are identical to evaluating
// each job individually (batched kernels are bit-exact against the
// scalar path).
func (p *Pool) Sweep(jobs []Job) []Result {
	out := make([]Result, len(jobs))
	norm := make([]Job, len(jobs))
	var missIdx []int
	for i := range jobs {
		j := p.normalize(jobs[i])
		norm[i] = j
		if r, ok := p.cache.memo.Peek(j); ok {
			out[i] = r
			p.cache.hits.Add(1)
			continue
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return out
	}

	// Collect the distinct missing jobs, serving what the disk memo
	// already has and grouping the rest by family, in first-seen order.
	priced := make(map[Job]Result)
	fromDisk := make(map[Job]bool)
	disk := p.cache.disk.Load()
	families := make(map[jobFamily][]parallel.Config)
	var order []jobFamily
	distinct := 0
	for _, i := range missIdx {
		j := norm[i]
		if _, ok := priced[j]; ok {
			continue
		}
		if _, ok := fromDisk[j]; ok {
			continue
		}
		if disk != nil {
			if r, ok := disk.Lookup(j); ok {
				priced[j] = r
				fromDisk[j] = true
				continue
			}
		}
		f := jobFamily{Model: j.Model, Wafer: j.Wafer, Opts: j.Opts, Backend: j.Backend}
		if _, ok := families[f]; !ok {
			order = append(order, f)
		} else {
			// Dedupe within the family (PriceBatch would dedupe too,
			// but skipping here keeps the chunk accounting exact).
			dup := false
			for _, c := range families[f] {
				if c == j.Config {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
		}
		families[f] = append(families[f], j.Config)
		distinct++
	}

	if distinct > 0 {
		if co := p.coal; co != nil {
			// Cross-request miss coalescing: hand the family groups to
			// the coalescer, which merges them with other in-flight
			// sweeps' misses before pricing (results are bit-identical —
			// batched kernels are grouping-invariant).
			co.price(order, families, priced)
		} else {
			p.priceFamilies(order, families, distinct, priced)
		}
	}

	// Publish through the memo so counters, entry identity and
	// concurrent-sweep races behave exactly like the scalar path, and
	// fresh results reach the disk memo.
	for _, i := range missIdx {
		j := norm[i]
		r, fresh := p.cache.memo.Get(j, func() Result { return priced[j] })
		out[i] = r
		switch {
		case !fresh:
			p.cache.hits.Add(1)
		case fromDisk[j]:
			p.cache.diskHits.Add(1)
		default:
			p.cache.misses.Add(1)
			if disk != nil {
				disk.Store(j, r)
			}
		}
	}
	return out
}

// priceFamilies prices family-grouped configuration lists through
// chunked cost.PriceBatch calls spread across the pool, writing each
// job's result into priced. distinct is the total config count across
// families (for chunk sizing and the batched-jobs counter).
func (p *Pool) priceFamilies(order []jobFamily, families map[jobFamily][]parallel.Config, distinct int, priced map[Job]Result) {
	// Chunk so the distinct misses spread across the pool while
	// each batch stays large enough to amortize its setup.
	size := (distinct + p.workers - 1) / p.workers
	if size < 1 {
		size = 1
	}
	if size > sweepChunkCap {
		size = sweepChunkCap
	}
	type chunk struct {
		fam  jobFamily
		cfgs []parallel.Config
	}
	var chunks []chunk
	for _, f := range order {
		cfgs := families[f]
		for s := 0; s < len(cfgs); s += size {
			e := s + size
			if e > len(cfgs) {
				e = len(cfgs)
			}
			chunks = append(chunks, chunk{fam: f, cfgs: cfgs[s:e]})
		}
	}
	results := make([][]Result, len(chunks))
	p.Map(len(chunks), func(ci int) {
		c := chunks[ci]
		rs := make([]Result, len(c.cfgs))
		be, err := cost.NewBackend(c.fam.Backend)
		if err != nil {
			for k := range rs {
				rs[k] = Result{Err: err}
			}
			results[ci] = rs
			return
		}
		p.Do(func() {
			bs, es := cost.PriceBatch(be, c.fam.Model, c.fam.Wafer, c.cfgs, c.fam.Opts)
			for k := range rs {
				rs[k] = Result{Breakdown: bs[k], Err: es[k]}
			}
		})
		results[ci] = rs
	})
	p.cache.batchCalls.Add(int64(len(chunks)))
	p.cache.batchedJobs.Add(int64(distinct))
	for ci, c := range chunks {
		for k, cfg := range c.cfgs {
			j := Job{Model: c.fam.Model, Wafer: c.fam.Wafer, Config: cfg,
				Opts: c.fam.Opts, Backend: c.fam.Backend}
			priced[j] = results[ci][k]
		}
	}
}

// Map runs f(0..n-1) across the pool's workers. Each index runs
// exactly once; f must be safe for concurrent invocation when the
// pool has more than one worker.
func (p *Pool) Map(n int, f func(i int)) {
	ForEach(p.workers, n, f)
}

// ForEach runs f(0..n-1) across at most workers goroutines. With one
// worker (or one item) it degenerates to a plain serial loop, so
// callers can treat it as the single fan-out primitive at any
// parallelism level.
func ForEach(workers, n int, f func(i int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var firstPanic atomic.Pointer[PanicError]
	wg.Add(workers)
	for k := 0; k < workers; k++ {
		go func() {
			defer wg.Done()
			// A panic in f unwinds this goroutine; the deferred recover
			// publishes it (first wins) instead of crashing the process.
			// Keeping the recover at the goroutine top — not per item —
			// keeps the loop body allocation-free.
			defer func() {
				if r := recover(); r != nil {
					firstPanic.CompareAndSwap(nil, newPanicError(r))
				}
			}()
			for firstPanic.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
	if pe := firstPanic.Load(); pe != nil {
		// Surface the first worker panic to the caller. The serial path
		// above propagates panics naturally; here we re-panic with the
		// captured value plus its original stack.
		panic(pe)
	}
}

// defaultPool serves the package-level helpers; the CLIs retune its
// worker bound via SetWorkers while every caller keeps sharing one
// cache.
var defaultPool atomic.Pointer[Pool]

func init() {
	defaultPool.Store(New(0))
}

// Default returns the shared pool.
func Default() *Pool { return defaultPool.Load() }

// SetWorkers rebounds the shared pool's worker count, retaining the
// shared cache contents (and the default backend and any attached
// disk memo). When the new worker bound outgrows the cache's stripe
// count, the cache is resharded — entries and counters migrate — so a
// late SetWorkers call still gets contention-appropriate striping
// instead of the init-time default. Evaluations racing with the swap
// land in the old cache and are re-priced on first touch of the new
// one; call SetWorkers during setup to avoid the (correct but
// wasteful) overlap.
func SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	cur := Default()
	cache := cur.cache
	if want := shardsFor(n); want > cache.memo.Shards() {
		cache = cache.resharded(want)
	}
	defaultPool.Store(&Pool{workers: n, cache: cache, backend: cur.backend, sem: make(chan struct{}, n), coal: cur.coal})
}

// Workers returns the shared pool's worker bound.
func Workers() int { return Default().workers }

// SetDefaultBackend retargets the shared pool's default cost backend:
// every job that does not name a backend explicitly is priced by this
// tier from now on. The cache is retained — backend keys are part of
// the memo key, so tiers never cross-contaminate. The key must
// resolve (see cost.NewBackend); it is returned canonicalized.
func SetDefaultBackend(key string) (string, error) {
	canon := cost.CanonicalBackendKey(key)
	if _, err := cost.NewBackend(canon); err != nil {
		return "", err
	}
	cur := Default()
	defaultPool.Store(&Pool{workers: cur.workers, cache: cur.cache, backend: canon, sem: make(chan struct{}, cur.workers), coal: cur.coal})
	return canon, nil
}

// DefaultBackend returns the shared pool's default backend key (""
// means analytic).
func DefaultBackend() string { return Default().backend }

// SetDiskMemo attaches a persistent memo under the pool's cache (nil
// detaches). In-memory misses consult it before pricing; fresh
// results are appended to it.
func (p *Pool) SetDiskMemo(d *DiskMemo) { p.cache.SetDiskMemo(d) }

// AttachDiskMemo opens (creating if needed) the persistent memo in
// dir and attaches it to the shared pool — the CLIs' -memo-dir /
// TEMPMEMO hook. Returns the memo so callers can Close it on exit.
func AttachDiskMemo(dir string) (*DiskMemo, error) {
	d, err := OpenDiskMemo(dir)
	if err != nil {
		return nil, err
	}
	Default().SetDiskMemo(d)
	return d, nil
}

// HasDiskMemo reports whether the shared pool has a memo attached —
// what a fabric worker advertises in its hello so the coordinator
// knows whether to sync warm state.
func HasDiskMemo() bool { return Default().cache.DiskMemo() != nil }

// MemoSegment serializes the shared pool's attached memo for shipping
// to shared-nothing workers (distrib memo sync). Returns (nil, 0)
// when no memo is attached, it is empty, or serialization fails —
// sync is an optimization, never a failure mode.
func MemoSegment() ([]byte, int) {
	d := Default().cache.DiskMemo()
	if d == nil {
		return nil, 0
	}
	n := d.Len()
	if n == 0 {
		return nil, 0
	}
	seg, err := d.Segment()
	if err != nil {
		return nil, 0
	}
	return seg, n
}

// ImportMemoSegment merges a serialized memo segment into the shared
// pool's attached memo, attaching an in-memory one first when none is
// present (the shared-nothing worker case). Returns records merged.
func ImportMemoSegment(data []byte) (int, error) {
	d := Default().cache.DiskMemo()
	if d == nil {
		d = NewMemoryMemo()
		Default().SetDiskMemo(d)
	}
	return d.ImportSegment(data)
}

// CountersSnapshot returns the shared engine's cache counters — the
// single accessor CLIs and the serving daemon read instead of
// reaching into pool internals.
func CountersSnapshot() Stats { return Default().cache.Stats() }

// EvaluateJob runs one memoized evaluation of an explicit job on the
// shared pool.
func EvaluateJob(j Job) (cost.Breakdown, error) { return Default().EvaluateJob(j) }

// Evaluate runs one memoized evaluation on the shared pool.
func Evaluate(m model.Config, w hw.Wafer, cfg parallel.Config, o cost.Options) (cost.Breakdown, error) {
	return Default().Evaluate(m, w, cfg, o)
}

// Sweep fans jobs out on the shared pool.
func Sweep(jobs []Job) []Result { return Default().Sweep(jobs) }

// Map runs f(0..n-1) on the shared pool.
func Map(n int, f func(i int)) { Default().Map(n, f) }

// Do runs one leaf computation under the shared pool's global
// evaluation bound.
func Do(f func()) { Default().Do(f) }
