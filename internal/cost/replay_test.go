package cost_test

import (
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// TestOperatorReplayDeltaCaches pins the replay operator model's
// per-placement term caches: re-asking any (op, cfg) pair must return
// the first answer bit-for-bit, and the answers must not depend on the
// order the caches were warmed in — a fresh model asked in reverse
// order produces identical values. This is what makes the replay tier
// safe under delta evaluation, where a solver re-prices terms in an
// unpredictable order.
func TestOperatorReplayDeltaCaches(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	g := model.BlockGraph(m)
	cfgs := []parallel.Config{
		{DP: 2, TP: 2, SP: 2, TATP: 4},
		{DP: 1, TP: 4, SP: 2, TATP: 4},
		{DP: 4, TP: 8, SP: 1, TATP: 1},
		{DP: 1, TP: 2, SP: 1, TATP: 16},
	}

	r1 := cost.NewOperatorReplay(m, w)
	type key struct{ op, cfg int }
	first := map[key]float64{}
	for ci, cfg := range cfgs {
		for oi, op := range g.Ops {
			first[key{oi, ci}] = r1.Intra(op, cfg)
		}
	}

	// Second pass on the same model: every term is now cached and must
	// reproduce the first pass exactly.
	for ci, cfg := range cfgs {
		for oi, op := range g.Ops {
			if got := r1.Intra(op, cfg); got != first[key{oi, ci}] {
				t.Fatalf("cfg %s op %d: cached Intra %v != first %v", cfg, oi, got, first[key{oi, ci}])
			}
		}
	}

	// Fresh model, reversed warm order: cache population order must not
	// leak into the values.
	r2 := cost.NewOperatorReplay(m, w)
	for ci := len(cfgs) - 1; ci >= 0; ci-- {
		for oi := len(g.Ops) - 1; oi >= 0; oi-- {
			if got := r2.Intra(g.Ops[oi], cfgs[ci]); got != first[key{oi, ci}] {
				t.Fatalf("cfg %s op %d: reverse-order Intra %v != forward %v",
					cfgs[ci], oi, got, first[key{oi, ci}])
			}
		}
	}
}
