package fault

import (
	"reflect"
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

// TestMaskSearchAdversarialBound: the searched mask is deterministic,
// does real damage (norm < 1), and is at least as damaging as the mean
// over random masks of the same size — the adversarial-vs-sampling
// bound the subsystem exists to provide.
func TestMaskSearchAdversarialBound(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	cfg := parallel.Config{DP: 4, TATP: 8}
	o := cost.TEMPOptions()
	s := MaskSearch{K: 2, Seed: 7}
	wc, err := s.Run(m, w, cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(wc.Links) + len(wc.Dies); got != 2 {
		t.Fatalf("mask has %d sites, want 2 (%+v)", got, wc)
	}
	if wc.Norm <= 0 || wc.Norm >= 1 {
		t.Errorf("worst 2-link mask norm %v, want in (0,1)", wc.Norm)
	}
	if wc.SiteEvals <= 0 || wc.JointEvals <= 0 {
		t.Errorf("eval accounting empty: %+v", wc)
	}
	rnd, err := RandomMaskNorm(m, w, cfg, o, LinkMask, 2, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if wc.Norm > rnd+1e-9 {
		t.Errorf("adversarial mask norm %.4f exceeds random-mask mean %.4f", wc.Norm, rnd)
	}
	wc2, err := s.Run(m, w, cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	if wc2.Norm != wc.Norm || !reflect.DeepEqual(wc2.Links, wc.Links) || !reflect.DeepEqual(wc2.Dies, wc.Dies) {
		t.Errorf("mask search not deterministic:\n a %+v\n b %+v", wc, wc2)
	}
}

// TestMaskSearchDieMask: die masks kill whole dies, and a 1-die mask
// on a 32-die wafer still leaves a functional mapping.
func TestMaskSearchDieMask(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	wc, err := MaskSearch{K: 1, Kind: DieMask, Seed: 7}.Run(m, w, parallel.Config{DP: 4, TATP: 8}, cost.TEMPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(wc.Dies) != 1 || len(wc.Links) != 0 {
		t.Fatalf("die mask sites: %+v", wc)
	}
}

func TestMaskSearchRejectsOversizedMask(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	_, err := MaskSearch{K: 10_000, Seed: 7}.Run(m, w, parallel.Config{DP: 4, TATP: 8}, cost.TEMPOptions())
	if err == nil {
		t.Error("10k-site mask on a 4x8 wafer accepted")
	}
}

func TestRandomMaskNormRejectsNonPositiveTrials(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	if _, err := RandomMaskNorm(m, w, parallel.Config{DP: 4, TATP: 8}, cost.TEMPOptions(),
		LinkMask, 2, 0, 7); err == nil {
		t.Error("trials=0 accepted")
	}
}
