package stream

import (
	"fmt"
	"sync"

	"temp/internal/mesh"
)

// Operand identifies which operand of a linear operator is streamed
// between dies while the other stays resident.
type Operand int

// Streaming operand choices.
const (
	// StreamWeights keeps activations resident and streams weight
	// sub-tensors.
	StreamWeights Operand = iota
	// StreamInputs keeps weights resident and streams activation
	// sub-tensors.
	StreamInputs
)

// String implements fmt.Stringer.
func (o Operand) String() string {
	if o == StreamWeights {
		return "weights"
	}
	return "inputs"
}

// SelectOperand implements TATP's selective transfer policy (§V): the
// smaller operand is streamed to minimize communication. For long
// sequences activations dwarf weights, so weights stream; for short
// sequences with small batches the reverse can hold.
func SelectOperand(weightBytes, inputBytes float64) Operand {
	if inputBytes < weightBytes {
		return StreamInputs
	}
	return StreamWeights
}

// Orchestration binds a stream schedule to physical dies: position j
// of the schedule executes on Order[j].
type Orchestration struct {
	Sched *Schedule
	// Order maps logical chain position to physical die.
	Order []mesh.DieID
	// ClosesRing reports whether Order[N-1] and Order[0] are mesh
	// neighbors (a physical ring exists).
	ClosesRing bool
	topo       *mesh.Topology

	// tmpl is the compiled byte-invariant phase structure of the
	// schedule, built once on frozen topologies (routes cannot change)
	// and rescaled per Phases query.
	tmplOnce sync.Once
	tmpl     *mesh.PhaseTemplate
}

// Mode returns the orchestration mode.
func (o *Orchestration) Mode() Mode { return o.Sched.Mode }

// N returns the group size.
func (o *Orchestration) N() int { return o.Sched.N }

// Orchestrate picks the best orchestration for a die group (§V logic
// design):
//
//   - groups that fill a ring-capable rectangle use the physical-ring
//     order with the naive ring schedule — contention-free single-hop
//     transfers at 1× volume;
//   - other contiguous rectangles use the snake Hamiltonian path with
//     the bidirectional schedule — single-hop at 2× volume;
//   - non-contiguous groups keep their given order and fall back to a
//     multi-hop logical ring, the tail-latency case TEMP's mapping
//     avoids creating.
func Orchestrate(t *mesh.Topology, dies []mesh.DieID, rect *mesh.Rect) *Orchestration {
	n := len(dies)
	if n == 0 {
		panic("stream: empty group")
	}
	if rect != nil && rect.Area() == n {
		if ring, ok := rect.RingPath(t); ok {
			return &Orchestration{Sched: RingSchedule(n), Order: ring, ClosesRing: true, topo: t}
		}
		snake := rect.SnakePath(t)
		return &Orchestration{Sched: BidirectionalSchedule(n), Order: snake, topo: t}
	}
	// Non-contiguous: try to find a neighbor-to-neighbor ordering by
	// greedy chaining; if every consecutive pair is adjacent we can
	// still run the bidirectional schedule at one hop.
	if chain, ok := greedyChain(t, dies); ok {
		return &Orchestration{Sched: BidirectionalSchedule(n), Order: chain, topo: t}
	}
	order := append([]mesh.DieID(nil), dies...)
	return &Orchestration{
		Sched: &Schedule{
			N:            n,
			Mode:         Fallback,
			Compute:      RingSchedule(n).Compute,
			Sends:        RingSchedule(n).Sends,
			VolumeFactor: 1,
			PeakBuffer:   RingSchedule(n).PeakBuffer,
		},
		Order: order,
		topo:  t,
	}
}

// greedyChain attempts to order dies into a path where consecutive
// dies are mesh neighbors. Works for L-shaped and snake-like groups.
func greedyChain(t *mesh.Topology, dies []mesh.DieID) ([]mesh.DieID, bool) {
	if len(dies) <= 1 {
		return append([]mesh.DieID(nil), dies...), true
	}
	inGroup := make(map[mesh.DieID]bool, len(dies))
	for _, d := range dies {
		inGroup[d] = true
	}
	degree := func(d mesh.DieID) int {
		n := 0
		for _, nb := range t.Neighbors(d) {
			if inGroup[nb] {
				n++
			}
		}
		return n
	}
	// Start from a die with the fewest in-group neighbors (a chain
	// endpoint, when one exists).
	start := dies[0]
	for _, d := range dies[1:] {
		if degree(d) < degree(start) {
			start = d
		}
	}
	order := []mesh.DieID{start}
	used := map[mesh.DieID]bool{start: true}
	for len(order) < len(dies) {
		cur := order[len(order)-1]
		next := mesh.DieID(-1)
		bestDeg := 1 << 30
		for _, nb := range t.Neighbors(cur) {
			if inGroup[nb] && !used[nb] && degree(nb) < bestDeg {
				next, bestDeg = nb, degree(nb)
			}
		}
		if next < 0 {
			return nil, false
		}
		order = append(order, next)
		used[next] = true
	}
	return order, true
}

// MaxHopsPerRound returns the longest physical route any scheduled
// send traverses — 1 for ring/bidirectional on contiguous groups,
// O(N) for the fallback wrap-around transfer.
func (o *Orchestration) MaxHopsPerRound() int {
	max := 0
	for _, sends := range o.Sched.Sends {
		for _, snd := range sends {
			src, dst := o.Order[snd.From], o.Order[snd.To]
			h := o.hops(src, dst)
			if h > max {
				max = h
			}
		}
	}
	return max
}

func (o *Orchestration) hops(a, b mesh.DieID) int {
	if o.topo.Adjacent(a, b) {
		return 1
	}
	if p := o.topo.Route(a, b); p != nil {
		return p.Hops()
	}
	return o.topo.HopDistance(a, b)
}

// Phases lowers the schedule to mesh communication phases, one per
// round, with every send routed on the topology. subBytes is the
// size of one sub-tensor. On a frozen (interned) topology the routed
// structure is compiled once and rescaled per call; on a mutable
// topology every call re-routes, because fault mutations between
// calls can change the routes.
func (o *Orchestration) Phases(subBytes float64) []mesh.Phase {
	if o.topo.Frozen() {
		o.tmplOnce.Do(func() { o.tmpl = mesh.NewPhaseTemplate(o.lowerPhases(1)) })
		return o.tmpl.Materialize(subBytes)
	}
	return o.lowerPhases(subBytes)
}

// lowerPhases routes every scheduled send on the topology.
func (o *Orchestration) lowerPhases(subBytes float64) []mesh.Phase {
	phases := make([]mesh.Phase, 0, len(o.Sched.Sends))
	for t, sends := range o.Sched.Sends {
		ph := mesh.Phase{Label: fmt.Sprintf("stream-round-%d", t)}
		for _, snd := range sends {
			src, dst := o.Order[snd.From], o.Order[snd.To]
			route := o.topo.Route(src, dst)
			if route == nil {
				continue // unreachable under faults; caller re-plans
			}
			ph.Flows = append(ph.Flows, mesh.Flow{
				Src:     src,
				Dst:     dst,
				Bytes:   subBytes,
				Route:   route,
				Payload: fmt.Sprintf("subT%d", snd.SubT),
			})
		}
		phases = append(phases, ph)
	}
	return phases
}

// RoundStats summarises the per-round communication of the
// orchestration for the analytic cost model.
type RoundStats struct {
	// BytesPerLink is the largest per-link byte load in any round,
	// per sub-tensor byte (multiply by sub-tensor size).
	BytesPerLink float64
	// MaxHops is the longest route of any send.
	MaxHops int
	// TotalSubTensorHops is Σ over sends of route hops, per
	// sub-tensor byte — the D2D energy driver.
	TotalSubTensorHops float64
	// Rounds is the schedule length.
	Rounds int
}

// Stats computes RoundStats with unit-size sub-tensors.
func (o *Orchestration) Stats() RoundStats {
	rs := RoundStats{Rounds: o.Sched.N}
	for _, sends := range o.Sched.Sends {
		load := map[mesh.Link]float64{}
		for _, snd := range sends {
			src, dst := o.Order[snd.From], o.Order[snd.To]
			route := o.topo.Route(src, dst)
			if route == nil {
				continue
			}
			h := route.Hops()
			if h > rs.MaxHops {
				rs.MaxHops = h
			}
			rs.TotalSubTensorHops += float64(h)
			for _, l := range route.Links() {
				load[l]++
			}
		}
		for _, v := range load {
			if v > rs.BytesPerLink {
				rs.BytesPerLink = v
			}
		}
	}
	return rs
}
