package mesh

import (
	"testing"

	"temp/internal/hw"
)

// TestTimeZeroAllocs pins the dense kernel's allocation contract:
// steady-state Time and SeqTime must not allocate (scratch comes from
// the pool, the bottleneck scan walks the link index).
func TestTimeZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	tp := New(4, 8, hw.TableID2D())
	p := benchPhase(tp)
	phases := []Phase{p, p, p}
	tp.Time(p) // warm the scratch pool
	if avg := testing.AllocsPerRun(100, func() { tp.Time(p) }); avg != 0 {
		t.Errorf("Time allocates %.1f objects/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { tp.SeqTime(phases) }); avg != 0 {
		t.Errorf("SeqTime allocates %.1f objects/op, want 0", avg)
	}
}

// TestSeqTimeLoweredZeroAllocs pins the template evaluation path: a
// compiled phase sequence is timed without materialization.
func TestSeqTimeLoweredZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	tp := Shared(4, 8, hw.TableID2D())
	tmpl := NewPhaseTemplate([]Phase{benchPhase(tp), benchPhase(tp)})
	seq := []LoweredSeq{{Tmpl: tmpl, Bytes: 1 << 20}, {Tmpl: tmpl, Bytes: 512}}
	tp.SeqTimeLowered(seq)
	if avg := testing.AllocsPerRun(100, func() { tp.SeqTimeLowered(seq) }); avg != 0 {
		t.Errorf("SeqTimeLowered allocates %.1f objects/op, want 0", avg)
	}
}

// TestSeqTimeLoweredMatchesMaterialized cross-checks the two template
// consumers: timing the templates in place must equal timing the
// materialized concatenation bit for bit.
func TestSeqTimeLoweredMatchesMaterialized(t *testing.T) {
	tp := Shared(4, 8, hw.TableID2D())
	tmpl := NewPhaseTemplate([]Phase{benchPhase(tp), benchPhase(tp)})
	seq := []LoweredSeq{{Tmpl: tmpl, Bytes: 3.7e6}, {Tmpl: tmpl, Bytes: 1234.5}}
	got := tp.SeqTimeLowered(seq)
	want := tp.SeqTime(MaterializeSeq(seq))
	if got != want {
		t.Errorf("SeqTimeLowered = %+v, materialized SeqTime = %+v", got, want)
	}
}

// TestTimeMatchesGenericKernel pins the dense kernel against the
// historical map kernel bit for bit, including the bottleneck
// tie-break (sorted link order) and summation order.
func TestTimeMatchesGenericKernel(t *testing.T) {
	tp := New(4, 8, hw.TableID2D())
	p := benchPhase(tp)
	// Add flows with shared links so several links tie on load.
	p.Flows = append(p.Flows, p.Flows...)
	got := tp.Time(p)
	want := tp.timeGeneric(p, false, 0)
	if got != want {
		t.Errorf("dense Time = %+v, generic = %+v", got, want)
	}
}

// TestTimeFallbackOffMesh verifies that synthetic routes between
// non-adjacent dies still evaluate (via the generic kernel).
func TestTimeFallbackOffMesh(t *testing.T) {
	tp := New(4, 8, hw.TableID2D())
	p := Phase{Flows: []Flow{{Src: 0, Dst: 9, Bytes: 100, Route: Path{0, 9}}}}
	pt := tp.Time(p)
	if pt.TotalBytes != 100 || pt.Serialization <= 0 {
		t.Errorf("off-mesh fallback produced %+v", pt)
	}
	if got, want := pt, tp.timeGeneric(p, false, 0); got != want {
		t.Errorf("fallback mismatch: %+v vs %+v", got, want)
	}
}

// TestLinkIndexRoundTrip pins the canonical dense index: IDs ascend
// in sorted (From, To) order and LinkID inverts LinkByID.
func TestLinkIndexRoundTrip(t *testing.T) {
	for _, grid := range [][2]int{{4, 8}, {1, 5}, {5, 1}, {2, 2}} {
		tp := New(grid[0], grid[1], hw.TableID2D())
		prev := Link{-1, -1}
		for id := 0; id < tp.NumLinks(); id++ {
			l := tp.LinkByID(id)
			if tp.LinkID(l) != id {
				t.Fatalf("%v: LinkID(%v) = %d, want %d", grid, l, tp.LinkID(l), id)
			}
			if l.From < prev.From || (l.From == prev.From && l.To <= prev.To) {
				t.Fatalf("%v: link IDs not in sorted order: %v after %v", grid, l, prev)
			}
			if !tp.Adjacent(l.From, l.To) {
				t.Fatalf("%v: indexed link %v not adjacent", grid, l)
			}
			prev = l
		}
		if tp.LinkID(Link{0, DieID(tp.Dies())}) >= 0 {
			t.Fatalf("%v: out-of-grid link got an ID", grid)
		}
		if grid[1] > 2 && tp.LinkID(Link{0, 2}) >= 0 {
			t.Fatalf("%v: non-adjacent pair got an ID", grid)
		}
	}
}

// TestInternSemantics pins the interner contract: FromWafer-style
// lookups share one frozen instance, mutation of a frozen topology
// panics, clones are mutable, and re-interning a faulted clone keys
// on the exact fault mask.
func TestInternSemantics(t *testing.T) {
	a := Shared(4, 8, hw.TableID2D())
	b := Shared(4, 8, hw.TableID2D())
	if a != b {
		t.Fatal("Shared returned distinct instances for one key")
	}
	if !a.Frozen() {
		t.Fatal("interned topology not frozen")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mutating an interned topology did not panic")
			}
		}()
		a.SetDieAlive(0, false)
	}()

	c := a.Clone()
	if c.Frozen() {
		t.Fatal("clone is frozen")
	}
	c.SetLinkAlive(Link{0, 1}, false)
	c.SetCoreFraction(3, 0.5)
	if a.LinkAlive(Link{0, 1}) != true || a.CoreFraction(3) != 1 {
		t.Fatal("clone mutation leaked into the interned original")
	}
	f1 := c.Intern()
	if !f1.Frozen() || f1 == a {
		t.Fatal("faulted intern must freeze a distinct instance")
	}
	// Same mask → same instance.
	d := a.Clone()
	d.SetLinkAlive(Link{0, 1}, false)
	d.SetCoreFraction(3, 0.5)
	if d.Intern() != f1 {
		t.Error("identical fault masks interned to distinct instances")
	}
	// Different mask → different instance.
	e := a.Clone()
	e.SetLinkAlive(Link{0, 1}, false)
	if e.Intern() == f1 {
		t.Error("distinct fault masks shared one instance")
	}
	// A healthy clone interns back to the shared healthy instance.
	if a.Clone().Intern() != a {
		t.Error("healthy clone did not intern to the shared instance")
	}
}
