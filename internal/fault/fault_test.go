package fault

import (
	"math/rand"
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/mesh"
	"temp/internal/model"
	"temp/internal/parallel"
)

func TestApplyLinkFaultsBundled(t *testing.T) {
	topo := mesh.FromWafer(hw.EvaluationWafer()).Clone()
	rng := rand.New(rand.NewSource(1))
	Injection{LinkRate: 0.3}.Apply(topo, rng)
	// Directions must fail together.
	for _, l := range topo.Links() {
		if !topo.LinkAlive(mesh.Link{From: l.To, To: l.From}) {
			t.Fatalf("link %v alive but reverse dead", l)
		}
	}
	rep := Localize(topo)
	if rep.DeadLinks == 0 {
		t.Error("30% injection killed no links")
	}
}

func TestApplyCoreFaults(t *testing.T) {
	topo := mesh.FromWafer(hw.EvaluationWafer()).Clone()
	rng := rand.New(rand.NewSource(2))
	Injection{CoreRate: 0.2, CoresPerDie: 64}.Apply(topo, rng)
	rep := Localize(topo)
	if rep.MeanCapacity >= 0.95 || rep.MeanCapacity <= 0.6 {
		t.Errorf("mean capacity %v implausible for 20%% core faults", rep.MeanCapacity)
	}
}

func TestLocalizeHealthy(t *testing.T) {
	topo := mesh.FromWafer(hw.EvaluationWafer())
	rep := Localize(topo)
	if rep.DeadLinks != 0 || rep.DeadDies != 0 || !rep.Connected || rep.MeanCapacity != 1 {
		t.Errorf("healthy wafer localization wrong: %+v", rep)
	}
}

func TestEvaluateHealthyMatchesBaseline(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	cfg := parallel.Config{DP: 4, TATP: 8}
	o := cost.TEMPOptions()
	out := Evaluate(m, w, cfg, o, Injection{}, rand.New(rand.NewSource(3)))
	if !out.Functional {
		t.Fatal("healthy evaluation not functional")
	}
	base, err := cost.Evaluate(m, w, cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	ratio := out.Breakdown.ThroughputTokens / base.ThroughputTokens
	if ratio < 0.99 || ratio > 1.01 {
		t.Errorf("fault-free throughput ratio = %v, want ~1", ratio)
	}
}

// TestCoreFaultsDegradeGracefully reproduces Fig. 20(c): ~25% core
// faults retain the bulk of throughput under adaptive re-balancing.
func TestCoreFaultsDegradeGracefully(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	cfg := parallel.Config{DP: 4, TATP: 8}
	v, err := NormalizedThroughput(m, w, cfg, cost.TEMPOptions(),
		Injection{CoreRate: 0.25, CoresPerDie: 64}, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0.6 || v > 0.9 {
		t.Errorf("throughput at 25%% core faults = %.2f, want ~0.7–0.8 (paper ~0.8)", v)
	}
}

// TestLinkFaultCliff reproduces Fig. 20(b): moderate link faults
// degrade gradually; heavy link faults collapse throughput.
func TestLinkFaultCliff(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	cfg := parallel.Config{DP: 4, TATP: 8}
	o := cost.TEMPOptions()
	low, err := NormalizedThroughput(m, w, cfg, o, Injection{LinkRate: 0.1}, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	high, err := NormalizedThroughput(m, w, cfg, o, Injection{LinkRate: 0.6}, 6, 12)
	if err != nil {
		t.Fatal(err)
	}
	if low < 0.5 {
		t.Errorf("10%% link faults already collapse throughput: %.2f", low)
	}
	if high > 0.5*low {
		t.Errorf("60%% link faults should collapse throughput: low=%.2f high=%.2f", low, high)
	}
}

func TestAdaptiveRebalanceBeatsLockstep(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	topoA := mesh.FromWafer(w).Clone()
	topoB := mesh.FromWafer(w).Clone()
	rng := rand.New(rand.NewSource(21))
	inj := Injection{CoreRate: 0.2, CoresPerDie: 64}
	inj.Apply(topoA, rng)
	// Mirror the same faults.
	for d := 0; d < topoA.Dies(); d++ {
		topoB.SetCoreFraction(mesh.DieID(d), topoA.CoreFraction(mesh.DieID(d)))
	}
	cfg := (parallel.Config{DP: 4, TATP: 8}).Normalize()
	place, err := parallel.Place(cfg, topoA)
	if err != nil {
		t.Fatal(err)
	}
	adaptive := cost.TEMPOptions()
	adaptive.AdaptiveRebalance = true
	lockstep := cost.TEMPOptions()
	ba, err := cost.EvaluateOn(m, w, cfg, adaptive, topoA, place)
	if err != nil {
		t.Fatal(err)
	}
	placeB, err := parallel.Place(cfg, topoB)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := cost.EvaluateOn(m, w, cfg, lockstep, topoB, placeB)
	if err != nil {
		t.Fatal(err)
	}
	if ba.StepTime >= bl.StepTime {
		t.Errorf("adaptive re-balance (%v) not faster than lock-step (%v)", ba.StepTime, bl.StepTime)
	}
}

func TestDisconnectedIsNonFunctional(t *testing.T) {
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	out := Evaluate(m, w, parallel.Config{DP: 4, TATP: 8}, cost.TEMPOptions(),
		Injection{LinkRate: 0.95}, rand.New(rand.NewSource(5)))
	if out.Functional {
		t.Error("95% link faults should disconnect the fabric")
	}
}
