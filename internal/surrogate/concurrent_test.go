package surrogate

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"temp/internal/hw"
)

// TestTrainedDNNConcurrentPredict hammers one trained DNN (and the
// linear baseline) from many goroutines. The concurrency contract —
// trained predictors are read-only, so Predict is safe from any
// number of goroutines — is what lets the solver price GA populations
// in parallel on surrogate-backed cost models; the CI -race run
// enforces it at the memory level, and the value checks below pin it
// at the determinism level.
func TestTrainedDNNConcurrentPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := hw.EvaluationWafer()
	train := Generate(Compute, 120, w, rng)
	test := Generate(Compute, 48, w, rng)
	dnn := TrainDNN(train, rng)
	lin := TrainLinear(train)

	for _, p := range []struct {
		name string
		pred Predictor
	}{{"dnn", dnn}, {"linear", lin}} {
		p := p
		t.Run(p.name, func(t *testing.T) {
			want := make([]float64, len(test))
			for i, s := range test {
				want[i] = p.pred.Predict(s.Features)
			}
			const goroutines = 16
			errs := make(chan error, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for rep := 0; rep < 40; rep++ {
						for i, s := range test {
							if got := p.pred.Predict(s.Features); got != want[i] {
								select {
								case errs <- fmt.Errorf("sample %d: concurrent %v ≠ serial %v", i, got, want[i]):
								default:
								}
								return
							}
						}
					}
				}()
			}
			wg.Wait()
			close(errs)
			if err := <-errs; err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOpDNNDeterministicPerSeed pins the operator-level trainer: the
// same samples and seed must yield bit-identical predictors.
func TestOpDNNDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w := hw.EvaluationWafer()
	samples := Generate(Overlap, 200, w, rng)
	a := TrainOpDNN(samples, 12, 40, rand.New(rand.NewSource(99)))
	b := TrainOpDNN(samples, 12, 40, rand.New(rand.NewSource(99)))
	for i, s := range samples[:32] {
		if got, want := a.Predict(s.Features), b.Predict(s.Features); got != want {
			t.Fatalf("sample %d: retrained predictor diverged: %v ≠ %v", i, got, want)
		}
	}
	c := TrainOpDNN(samples, 12, 40, rand.New(rand.NewSource(100)))
	same := true
	for _, s := range samples[:32] {
		if a.Predict(s.Features) != c.Predict(s.Features) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical predictors — seed is not plumbed through training")
	}
}
