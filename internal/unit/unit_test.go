package unit

import (
	"testing"
	"testing/quick"
)

func TestDTypeSize(t *testing.T) {
	tests := []struct {
		dt   DType
		want float64
	}{
		{FP16, 2}, {BF16, 2}, {FP32, 4}, {FP8, 1}, {INT8, 1},
	}
	for _, tc := range tests {
		if got := tc.dt.Size(); got != tc.want {
			t.Errorf("%v.Size() = %v, want %v", tc.dt, got, tc.want)
		}
	}
}

func TestDTypeString(t *testing.T) {
	tests := []struct {
		dt   DType
		want string
	}{
		{FP16, "fp16"}, {BF16, "bf16"}, {FP32, "fp32"}, {FP8, "fp8"}, {INT8, "int8"},
	}
	for _, tc := range tests {
		if got := tc.dt.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestBytesFormat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{512, "512B"},
		{2048, "2.00KiB"},
		{3 * MiB, "3.00MiB"},
		{1.5 * GiB, "1.50GiB"},
		{2 * TiB, "2.00TiB"},
	}
	for _, tc := range tests {
		if got := Bytes(tc.in); got != tc.want {
			t.Errorf("Bytes(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSecondsFormat(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{2.5, "2.500s"},
		{3 * Millisecond, "3.000ms"},
		{40 * Microsecond, "40.000us"},
		{200 * Nanosecond, "200.0ns"},
	}
	for _, tc := range tests {
		if got := Seconds(tc.in); got != tc.want {
			t.Errorf("Seconds(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestFlopsRateFormat(t *testing.T) {
	if got := Flops(1.8 * PFLOPS); got != "1.80PFLOP" {
		t.Errorf("Flops = %q", got)
	}
	if got := Flops(5 * GFLOPS); got != "5.00GFLOP" {
		t.Errorf("Flops = %q", got)
	}
	if got := Rate(4 * TB); got != "4.00TB/s" {
		t.Errorf("Rate = %q", got)
	}
	if got := Rate(600 * GB); got != "600.00GB/s" {
		t.Errorf("Rate = %q", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp mid = %v", got)
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilDiv(t *testing.T) {
	tests := []struct{ a, b, want int }{
		{10, 5, 2}, {11, 5, 3}, {1, 5, 1}, {0, 5, 0}, {64, 8, 8},
	}
	for _, tc := range tests {
		if got := CeilDiv(tc.a, tc.b); got != tc.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCeilDivProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		bb := int(b%1000) + 1
		aa := int(a)
		q := CeilDiv(aa, bb)
		return q*bb >= aa && (q-1)*bb < aa
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CeilDiv(1, 0) did not panic")
		}
	}()
	CeilDiv(1, 0)
}

func TestMinMaxF(t *testing.T) {
	if MaxF(1, 2) != 2 || MaxF(2, 1) != 2 {
		t.Error("MaxF wrong")
	}
	if MinF(1, 2) != 1 || MinF(2, 1) != 1 {
		t.Error("MinF wrong")
	}
}
