package engine

import (
	"sync"
	"testing"

	"temp/internal/cost"
	"temp/internal/hw"
	"temp/internal/model"
	"temp/internal/parallel"
)

func testJobs(t testing.TB) []Job {
	t.Helper()
	w := hw.EvaluationWafer()
	m := model.Llama2_7B()
	cfgs := parallel.EnumerateConfigs(w.Dies(), true, 0)
	jobs := make([]Job, 0, len(cfgs))
	for _, cfg := range cfgs {
		jobs = append(jobs, Job{Model: m, Wafer: w, Config: cfg, Opts: cost.TEMPOptions()})
	}
	if len(jobs) < 8 {
		t.Fatalf("config space too small for a meaningful sweep: %d", len(jobs))
	}
	return jobs
}

// TestSweepMatchesDirectEvaluate checks a parallel sweep returns, in
// input order, exactly what serial cost.Evaluate calls return.
func TestSweepMatchesDirectEvaluate(t *testing.T) {
	jobs := testJobs(t)
	res := New(8).Sweep(jobs)
	if len(res) != len(jobs) {
		t.Fatalf("sweep returned %d results for %d jobs", len(res), len(jobs))
	}
	for i, j := range jobs {
		want, wantErr := cost.Evaluate(j.Model, j.Wafer, j.Config, j.Opts)
		got, gotErr := res[i].Breakdown, res[i].Err
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("job %d: err %v, want %v", i, gotErr, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if got.StepTime != want.StepTime || got.Memory.Total() != want.Memory.Total() ||
			got.ThroughputTokens != want.ThroughputTokens {
			t.Errorf("job %d (%s): sweep breakdown diverged from direct evaluation", i, j.Config)
		}
		if got.Config != j.Config.Normalize() {
			t.Errorf("job %d: result config %s out of input order (want %s)", i, got.Config, j.Config)
		}
	}
}

// TestCacheHits checks a repeated sweep is served from the cache.
func TestCacheHits(t *testing.T) {
	jobs := testJobs(t)
	p := New(4)
	p.Sweep(jobs)
	s1 := p.Cache().Stats()
	if s1.Misses == 0 || s1.Entries == 0 {
		t.Fatalf("first sweep recorded no misses: %+v", s1)
	}
	p.Sweep(jobs)
	s2 := p.Cache().Stats()
	if s2.Misses != s1.Misses {
		t.Errorf("second sweep missed: %d → %d misses", s1.Misses, s2.Misses)
	}
	if s2.Hits < s1.Hits+int64(len(jobs)) {
		t.Errorf("second sweep hits %d, want ≥ %d", s2.Hits, s1.Hits+int64(len(jobs)))
	}
}

// TestCacheConcurrentSafety hammers one cache from many goroutines
// over an overlapping job set; run under -race this is the data-race
// proof for the sharded cache.
func TestCacheConcurrentSafety(t *testing.T) {
	jobs := testJobs(t)[:16]
	c := NewCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4*len(jobs); i++ {
				j := jobs[(g+i)%len(jobs)]
				b, err := c.Evaluate(j)
				if err != nil {
					t.Errorf("evaluate %s: %v", j.Config, err)
					return
				}
				if b.StepTime <= 0 {
					t.Errorf("evaluate %s: non-positive step time", j.Config)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats(); s.Entries > 16 {
		t.Errorf("cache grew past the distinct key count: %+v", s)
	}
}

// TestForEachCoversEveryIndexOnce covers the fan-out primitive at
// several worker counts, including the serial degenerate case.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 300
		counts := make([]int32, n)
		var mu sync.Mutex
		ForEach(workers, n, func(i int) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestGlobalBoundHoldsUnderNesting nests Map orchestration three
// deep (the experiments → systems → sweep shape) and checks the
// pool never runs more than its worker count of leaf evaluations
// concurrently — the contract the CLIs' -workers flag promises.
func TestGlobalBoundHoldsUnderNesting(t *testing.T) {
	const workers = 3
	p := New(workers)
	var cur, peak int32
	var mu sync.Mutex
	leaf := func() {
		p.Do(func() {
			mu.Lock()
			cur++
			if cur > peak {
				peak = cur
			}
			mu.Unlock()
			mu.Lock()
			cur--
			mu.Unlock()
		})
	}
	p.Map(4, func(int) {
		p.Map(4, func(int) {
			p.Map(4, func(int) { leaf() })
		})
	})
	if peak > workers {
		t.Errorf("peak concurrent leaf evaluations %d exceeds the %d-worker bound", peak, workers)
	}
	if peak == 0 {
		t.Error("no leaf ever ran")
	}
}

// TestSetWorkersKeepsSharedCache checks retuning the default pool
// does not drop what callers already memoized.
func TestSetWorkersKeepsSharedCache(t *testing.T) {
	before := Default().Cache()
	old := Workers()
	SetWorkers(3)
	defer SetWorkers(old)
	if Workers() != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", Workers())
	}
	if Default().Cache() != before {
		t.Error("SetWorkers replaced the shared cache")
	}
}

// TestBackendKeyedCache: jobs differing only in backend must occupy
// distinct memo entries with tier-specific results, and equivalent
// backend spellings must share one entry.
func TestBackendKeyedCache(t *testing.T) {
	p := New(2)
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	cfg := parallel.Config{DP: 2, TP: 2, TATP: 8}
	o := cost.TEMPOptions()

	analytic, err := p.EvaluateJob(Job{Model: m, Wafer: w, Config: cfg, Opts: o})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := p.EvaluateJob(Job{Model: m, Wafer: w, Config: cfg, Opts: o, Backend: "replay"})
	if err != nil {
		t.Fatal(err)
	}
	if replay.StepTime == analytic.StepTime {
		t.Error("replay and analytic backends returned identical step times — cache entries collided")
	}
	stats := p.Cache().Stats()
	if stats.Entries != 2 {
		t.Errorf("expected 2 cache entries (one per tier), have %d", stats.Entries)
	}
	// Equivalent spellings share the entry.
	if _, err := p.EvaluateJob(Job{Model: m, Wafer: w, Config: cfg, Opts: o, Backend: "Replay@seed=3"}); err != nil {
		t.Fatal(err)
	}
	if got := p.Cache().Stats().Entries; got != 2 {
		t.Errorf("equivalent backend spelling created a new entry (%d total)", got)
	}
	if _, err := p.EvaluateJob(Job{Model: m, Wafer: w, Config: cfg, Opts: o, Backend: "no-such-tier"}); err == nil {
		t.Error("unknown backend evaluated")
	}
}

// TestDefaultBackendRetarget: SetDefaultBackend reroutes jobs that
// leave Backend empty, without touching explicitly-keyed jobs.
func TestDefaultBackendRetarget(t *testing.T) {
	prev := DefaultBackend()
	if _, err := SetDefaultBackend("replay"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if _, err := SetDefaultBackend(prev); err != nil {
			t.Fatal(err)
		}
	}()
	if DefaultBackend() != "replay" {
		t.Fatalf("default backend %q", DefaultBackend())
	}
	m := model.GPT3_6_7B()
	w := hw.EvaluationWafer()
	cfg := parallel.Config{DP: 2, TP: 2, TATP: 8}
	o := cost.TEMPOptions()
	viaDefault, err := Evaluate(m, w, cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := cost.NewBackend("replay")
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Price(m, w, cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	if viaDefault.StepTime != want.StepTime {
		t.Errorf("default-backend evaluation %v ≠ direct replay price %v", viaDefault.StepTime, want.StepTime)
	}
	if _, err := SetDefaultBackend("bogus"); err == nil {
		t.Error("unknown default backend accepted")
	}
}
